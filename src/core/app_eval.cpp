#include "core/app_eval.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "core/design_flow.h"
#include "imgproc/gaussian_filter.h"
#include "nn/quantize.h"
#include "support/assert.h"
#include "support/thread_pool.h"

namespace axc::core {

namespace detail {

/// (Candidate netlist, evaluation options) -> result memo, shared by
/// metrics that read different fields of one expensive evaluation (power /
/// PDP / area columns of one characterization; mean / min PSNR of one
/// filter sweep).  Entries are looked up by netlist address but validated
/// against a stored copy of the netlist and a fingerprint of every
/// result-affecting option, so neither a reused address (a later rerank's
/// candidate allocated where a freed one lived) nor metrics that disagree
/// on options can be served another configuration's figures — mismatches
/// recompute.  A per-entry once-latch makes concurrent sharers of one
/// candidate wait for a single evaluation instead of each running their
/// own, and the entry count is capped so a cache held across many reranks
/// cannot grow without bound (a clear only costs re-evaluation).
template <typename Value>
class result_memo {
 public:
  Value get(const circuit::netlist& nl, std::uint64_t fingerprint,
            const std::function<Value()>& evaluate) {
    std::shared_ptr<entry> e;
    {
      std::scoped_lock lock(mutex_);
      if (by_netlist_.size() >= kMaxEntries &&
          !by_netlist_.contains(&nl)) {
        by_netlist_.clear();
      }
      std::shared_ptr<entry>& slot = by_netlist_[&nl];
      if (!slot || slot->fingerprint != fingerprint || slot->netlist != nl) {
        slot = std::make_shared<entry>(nl, fingerprint);
      }
      e = slot;
    }
    std::call_once(e->once, [&] { e->value = evaluate(); });
    return e->value;
  }

 private:
  static constexpr std::size_t kMaxEntries = 4096;

  struct entry {
    entry(circuit::netlist nl, std::uint64_t f)
        : netlist(std::move(nl)), fingerprint(f) {}
    std::once_flag once;
    circuit::netlist netlist;
    std::uint64_t fingerprint;
    Value value{};
  };

  std::mutex mutex_;
  std::unordered_map<const circuit::netlist*, std::shared_ptr<entry>>
      by_netlist_;
};

/// FNV-1a fold helper for the option fingerprints.
class fnv1a {
 public:
  void mix(std::uint64_t v) {
    hash_ ^= v;
    hash_ *= 0x100000001b3ULL;
  }
  void mix_bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) mix(p[i]);
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_{0xcbf29ce484222325ULL};
};

/// Content hash of a netlist (structure + wiring) — the rerank cache key
/// ingredient; collisions are resolved by full netlist comparison.
inline std::uint64_t netlist_hash(const circuit::netlist& nl) {
  fnv1a h;
  h.mix(nl.num_inputs());
  h.mix(nl.num_outputs());
  for (const circuit::gate_node& g : nl.gates()) {
    h.mix(static_cast<std::uint64_t>(g.fn));
    h.mix(g.in0);
    h.mix(g.in1);
  }
  for (std::size_t o = 0; o < nl.num_outputs(); ++o) h.mix(nl.output(o));
  return h.value();
}

}  // namespace detail

class power_characterization_cache
    : public detail::result_memo<design_power> {};
class filter_quality_cache
    : public detail::result_memo<imgproc::filter_quality> {};

/// (netlist, metric, spec) -> score memo for incremental re-ranking.
/// Keys are pre-mixed hashes; a stored netlist copy guards against both
/// hash collisions and reused-address confusion (compare result_memo).
class rerank_score_cache {
 public:
  [[nodiscard]] std::optional<double> lookup(std::uint64_t key,
                                             const circuit::netlist& nl) {
    std::scoped_lock lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end() || it->second.netlist != nl) return std::nullopt;
    return it->second.score;
  }

  void store(std::uint64_t key, const circuit::netlist& nl, double score) {
    std::scoped_lock lock(mutex_);
    if (entries_.size() >= kMaxEntries && !entries_.contains(key)) {
      entries_.clear();  // bounded growth; a clear only costs re-scoring
    }
    entries_.insert_or_assign(key, entry{nl, score});
  }

 private:
  /// Each entry carries a netlist copy for validation, so the cap bounds
  /// resident memory (a few KB per evolved candidate), matching
  /// result_memo's policy: overflow clears, which only costs re-scoring.
  static constexpr std::size_t kMaxEntries = 4096;

  struct entry {
    circuit::netlist netlist;
    double score;
  };

  std::mutex mutex_;
  std::unordered_map<std::uint64_t, entry> entries_;
};

std::shared_ptr<rerank_score_cache> make_rerank_cache() {
  return std::make_shared<rerank_score_cache>();
}

std::shared_ptr<power_characterization_cache> make_power_cache() {
  return std::make_shared<power_characterization_cache>();
}

std::shared_ptr<filter_quality_cache> make_psnr_cache() {
  return std::make_shared<filter_quality_cache>();
}

std::string save_network_weights(const nn::network& net) {
  std::ostringstream blob;
  net.save_weights(blob);
  return std::move(blob).str();
}

namespace {

class nn_accuracy_metric final : public app_metric {
 public:
  explicit nn_accuracy_metric(nn_accuracy_options options)
      : options_(std::move(options)) {
    AXC_EXPECTS(options_.build != nullptr);
    AXC_EXPECTS(!options_.trained_weights.empty());
    AXC_EXPECTS(!options_.calibration.empty());
    AXC_EXPECTS(options_.test_x.size() == options_.test_labels.size());
    AXC_EXPECTS(!options_.test_x.empty());
    if (options_.finetune) {
      AXC_EXPECTS(options_.train_x.size() == options_.train_labels.size());
      AXC_EXPECTS(!options_.train_x.empty());
    }
    // The build() functor itself is unhashable, but the weight blob pins
    // the architecture (load_weights() rejects mismatches).  These inputs
    // are owned/immutable, so they hash once here; the caller-owned
    // dataset views are hashed by *content* at fingerprint() time instead
    // (see below).
    detail::fnv1a hash;
    hash.mix(0x6e6e5f616363ULL);  // metric-kind tag
    hash.mix_bytes(options_.trained_weights.data(),
                   options_.trained_weights.size());
    hash.mix(options_.finetune.has_value());
    if (options_.finetune) {
      hash.mix(options_.finetune->epochs);
      hash.mix(options_.finetune->batch_size);
      hash.mix(std::bit_cast<std::uint32_t>(options_.finetune->learning_rate));
      hash.mix(std::bit_cast<std::uint32_t>(options_.finetune->momentum));
      hash.mix(std::bit_cast<std::uint32_t>(options_.finetune->lr_decay));
      hash.mix(options_.finetune->seed);
    }
    options_hash_ = hash.value();
  }

  [[nodiscard]] const std::string& name() const override {
    return options_.name;
  }
  [[nodiscard]] bool higher_is_better() const override { return true; }
  [[nodiscard]] std::optional<std::uint64_t> fingerprint() const override {
    // Datasets are caller-owned views that may be refilled in place
    // between reranks, so the fingerprint folds their *contents* on every
    // call (a few hundred KB of hashing — noise next to one NN scoring).
    detail::fnv1a hash;
    hash.mix(options_hash_);
    const auto mix_tensors = [&hash](std::span<const nn::tensor> tensors) {
      hash.mix(tensors.size());
      for (const nn::tensor& t : tensors) {
        const auto shape = t.shape();
        hash.mix(shape[0]);
        hash.mix(shape[1]);
        hash.mix(shape[2]);
        hash.mix_bytes(t.data().data(), t.data().size() * sizeof(float));
      }
    };
    mix_tensors(options_.calibration);
    mix_tensors(options_.test_x);
    hash.mix_bytes(options_.test_labels.data(),
                   options_.test_labels.size() * sizeof(int));
    if (options_.finetune) {
      mix_tensors(options_.train_x);
      hash.mix_bytes(options_.train_labels.data(),
                     options_.train_labels.size() * sizeof(int));
    }
    return hash.value();
  }

  [[nodiscard]] double score(
      const circuit::netlist&,
      const metrics::compiled_mult_table& table) const override {
    // Fresh clone per evaluation: fine-tuning mutates the float weights,
    // and concurrent candidates must not share any state.
    nn::network net = options_.build();
    std::istringstream blob(options_.trained_weights);
    const bool loaded = net.load_weights(blob);
    AXC_EXPECTS(loaded);  // build() must match the trained architecture
    nn::quantized_network qnet(net, options_.calibration);
    if (options_.finetune) {
      nn::finetune(qnet, options_.train_x, options_.train_labels, table,
                   *options_.finetune);
    }
    return qnet.accuracy(options_.test_x, options_.test_labels, table);
  }

 private:
  nn_accuracy_options options_;
  std::uint64_t options_hash_{0};
};

class gaussian_psnr_metric final : public app_metric {
 public:
  explicit gaussian_psnr_metric(gaussian_psnr_options options)
      : options_(std::move(options)) {
    detail::fnv1a hash;
    hash.mix(options_.image_count);
    hash.mix(options_.image_size);
    hash.mix(std::bit_cast<std::uint64_t>(options_.noise_sigma));
    hash.mix(options_.seed);
    options_hash_ = hash.value();
  }

  [[nodiscard]] const std::string& name() const override {
    return options_.name;
  }
  [[nodiscard]] bool higher_is_better() const override { return true; }
  [[nodiscard]] std::optional<std::uint64_t> fingerprint() const override {
    detail::fnv1a hash;
    hash.mix(0x70736e72ULL);  // metric-kind tag
    hash.mix(options_hash_);
    hash.mix(options_.report_min);
    return hash.value();
  }

  [[nodiscard]] double score(
      const circuit::netlist& nl,
      const metrics::compiled_mult_table& table) const override {
    const auto evaluate = [&]() -> imgproc::filter_quality {
      return imgproc::evaluate_filter_quality(
          table, options_.image_count, options_.image_size,
          options_.noise_sigma, options_.seed);
    };
    const imgproc::filter_quality quality =
        options_.cache ? options_.cache->get(nl, options_hash_, evaluate)
                       : evaluate();
    return options_.report_min ? quality.min_psnr_db : quality.mean_psnr_db;
  }

 private:
  gaussian_psnr_options options_;
  std::uint64_t options_hash_{0};
};

class power_metric final : public app_metric {
 public:
  explicit power_metric(power_metric_options options)
      : options_(std::move(options)) {
    AXC_EXPECTS(options_.library != nullptr);
    AXC_EXPECTS(!options_.distribution.empty());
    // Every option that changes the characterization (everything except
    // report/name) — the cache validation key.
    detail::fnv1a hash;
    hash.mix(options_.mac_acc_width);
    hash.mix(options_.workload_samples);
    hash.mix(options_.workload_seed);
    hash.mix(reinterpret_cast<std::uintptr_t>(options_.library));
    for (std::size_t a = 0; a < options_.distribution.size(); ++a) {
      hash.mix(std::bit_cast<std::uint64_t>(options_.distribution[a]));
    }
    options_hash_ = hash.value();
  }

  [[nodiscard]] const std::string& name() const override {
    return options_.name;
  }
  [[nodiscard]] bool higher_is_better() const override { return false; }
  [[nodiscard]] std::optional<std::uint64_t> fingerprint() const override {
    detail::fnv1a hash;
    hash.mix(0x706f776572ULL);  // metric-kind tag
    hash.mix(options_hash_);
    hash.mix(static_cast<std::uint64_t>(options_.report));
    return hash.value();
  }

  [[nodiscard]] double score(
      const circuit::netlist& nl,
      const metrics::compiled_mult_table& table) const override {
    const auto characterize = [&]() -> design_power {
      return options_.mac_acc_width > 0
                 ? characterize_mac(nl, table.spec(), options_.distribution,
                                    options_.mac_acc_width, *options_.library,
                                    options_.workload_samples,
                                    options_.workload_seed)
                 : characterize_multiplier(nl, table.spec(),
                                           options_.distribution,
                                           *options_.library,
                                           options_.workload_samples,
                                           options_.workload_seed);
    };
    design_power power;
    if (options_.cache) {
      // Mix the (score-time) spec into the validation fingerprint.
      detail::fnv1a hash;
      hash.mix(options_hash_);
      hash.mix(table.spec().width);
      hash.mix(static_cast<std::uint64_t>(table.spec().is_signed));
      power = options_.cache->get(nl, hash.value(), characterize);
    } else {
      power = characterize();
    }
    switch (options_.report) {
      case power_metric_options::quantity::power_uw:
        return power.power_uw;
      case power_metric_options::quantity::pdp_fj:
        return power.pdp_fj;
      case power_metric_options::quantity::area_um2:
        return power.area_um2;
      case power_metric_options::quantity::delay_ps:
        return power.delay_ps;
    }
    return power.power_uw;  // unreachable
  }

 private:
  power_metric_options options_;
  std::uint64_t options_hash_{0};
};

}  // namespace

std::unique_ptr<app_metric> make_nn_accuracy_metric(
    nn_accuracy_options options) {
  return std::make_unique<nn_accuracy_metric>(std::move(options));
}

std::unique_ptr<app_metric> make_gaussian_psnr_metric(
    gaussian_psnr_options options) {
  return std::make_unique<gaussian_psnr_metric>(std::move(options));
}

std::unique_ptr<app_metric> make_power_metric(power_metric_options options) {
  return std::make_unique<power_metric>(std::move(options));
}

rerank_result rerank_front(
    std::vector<app_candidate> candidates,
    std::span<const std::unique_ptr<app_metric>> metrics,
    const rerank_config& config) {
  AXC_EXPECTS(!metrics.empty());
  AXC_EXPECTS(config.quality_metric < metrics.size());
  AXC_EXPECTS(config.cost_metric < metrics.size());

  rerank_result result;
  result.metric_names.reserve(metrics.size());
  for (const auto& metric : metrics) {
    result.metric_names.push_back(metric->name());
  }
  result.designs.reserve(candidates.size());
  for (app_candidate& candidate : candidates) {
    result.designs.push_back(reranked_design{
        std::move(candidate), std::vector<double>(metrics.size(), 0.0)});
  }

  const std::size_t n = result.designs.size();
  thread_pool pool(std::max<std::size_t>(1, config.threads));

  // Incremental re-ranking: with a cache attached, replay the scores of
  // (netlist, metric) pairs already evaluated by a previous rerank —
  // bit-identical by the metric determinism contract — and only queue the
  // changed/new pairs.  Keys fold the netlist contents, the metric's
  // option fingerprint and the compile spec; unfingerprinted metrics are
  // always queued.
  struct job_ref {
    std::size_t i, m;
    std::uint64_t key;
    bool cacheable;
  };
  std::vector<job_ref> jobs;
  jobs.reserve(n * metrics.size());
  std::vector<std::optional<std::uint64_t>> metric_fp(metrics.size());
  for (std::size_t m = 0; m < metrics.size(); ++m) {
    metric_fp[m] = metrics[m]->fingerprint();
  }
  std::vector<bool> needs_table(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const circuit::netlist& nl = result.designs[i].candidate.netlist;
    const std::uint64_t nl_hash =
        config.cache ? detail::netlist_hash(nl) : 0;
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      std::uint64_t key = 0;
      if (config.cache && metric_fp[m].has_value()) {
        detail::fnv1a h;
        h.mix(nl_hash);
        h.mix(*metric_fp[m]);
        h.mix(config.spec.width);
        h.mix(static_cast<std::uint64_t>(config.spec.is_signed));
        key = h.value();
        if (const std::optional<double> hit = config.cache->lookup(key, nl)) {
          result.designs[i].scores[m] = *hit;
          continue;
        }
      }
      jobs.push_back(
          job_ref{i, m, key, config.cache && metric_fp[m].has_value()});
      needs_table[i] = true;
    }
  }

  // Compile each member with pending jobs once; all its metrics share the
  // table.  Fully cached candidates skip the compile entirely.
  std::vector<std::optional<metrics::compiled_mult_table>> tables(n);
  std::vector<std::size_t> to_compile;
  to_compile.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (needs_table[i]) to_compile.push_back(i);
  }
  parallel_for(pool, to_compile.size(), [&](std::size_t c) {
    const std::size_t i = to_compile[c];
    tables[i].emplace(result.designs[i].candidate.netlist, config.spec);
  });

  // Score the pending (candidate x metric) jobs.  Each job writes its own
  // slot, so the result is bit-identical at any thread count.
  parallel_for(pool, jobs.size(), [&](std::size_t j) {
    const job_ref& job = jobs[j];
    result.designs[job.i].scores[job.m] = metrics[job.m]->score(
        result.designs[job.i].candidate.netlist, *tables[job.i]);
  });

  // Remember the fresh scores for the next rerank (serial: the parallel
  // region above never touches the cache).
  if (config.cache) {
    for (const job_ref& job : jobs) {
      if (!job.cacheable) continue;
      config.cache->store(job.key, result.designs[job.i].candidate.netlist,
                          result.designs[job.i].scores[job.m]);
    }
  }

  // Application-level front, both axes in minimization form.
  const auto oriented = [&metrics](std::size_t m, double score) {
    return metrics[m]->higher_is_better() ? -score : score;
  };
  pareto_archive archive;
  for (std::size_t i = 0; i < n; ++i) {
    archive.insert(
        pareto_point{oriented(config.quality_metric,
                              result.designs[i].scores[config.quality_metric]),
                     oriented(config.cost_metric,
                              result.designs[i].scores[config.cost_metric]),
                     i});
  }
  result.front = archive.points();
  return result;
}

void append_candidates(std::vector<app_candidate>& candidates,
                       std::vector<app_candidate> extra) {
  candidates.reserve(candidates.size() + extra.size());
  for (app_candidate& c : extra) {
    c.index = candidates.size();
    candidates.push_back(std::move(c));
  }
}

std::vector<app_candidate> session_candidates(const search_session& session,
                                              bool front_only,
                                              std::string family) {
  std::vector<app_candidate> out;
  const auto push = [&](std::size_t job_id) {
    std::optional<evolved_design> design = session.design(job_id);
    if (!design) return;  // pending (cancelled / unfinished) job
    out.push_back(app_candidate{job_id, family, design->target, design->wmed,
                                design->area_um2,
                                std::move(design->netlist)});
  };
  if (front_only) {
    for (const pareto_point& p : session.front()) push(p.index);
  } else {
    for (std::size_t id = 0; id < session.total_jobs(); ++id) push(id);
  }
  return out;
}

std::optional<std::vector<app_candidate>> checkpoint_candidates(
    std::span<std::istream* const> streams, const component_handle& component,
    bool front_only, std::string family) {
  std::vector<app_candidate> all;
  pareto_archive merged;
  for (std::istream* is : streams) {
    std::optional<search_session> session =
        search_session::resume(*is, component);
    if (!session) return std::nullopt;  // reason already on stderr
    pareto_archive local;
    for (app_candidate& c : session_candidates(*session, front_only, family)) {
      c.index = all.size();
      if (front_only) local.insert(pareto_point{c.wmed, c.area_um2, c.index});
      all.push_back(std::move(c));
    }
    if (front_only) merged.merge(local);
  }
  if (front_only && streams.size() > 1) {
    // Cross-checkpoint union: a member of one session's front may be
    // dominated by another session's designs.
    std::vector<app_candidate> kept;
    kept.reserve(merged.size());
    for (const pareto_point& p : merged.points()) {
      app_candidate c = std::move(all[p.index]);
      c.index = kept.size();
      kept.push_back(std::move(c));
    }
    return kept;
  }
  return all;
}

std::optional<std::vector<app_candidate>> checkpoint_candidates(
    std::span<const std::string> paths, const component_handle& component,
    bool front_only, std::string family) {
  std::vector<std::ifstream> files;
  files.reserve(paths.size());
  std::vector<std::istream*> streams;
  streams.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream& file = files.emplace_back(path);
    if (!file) {
      std::fprintf(stderr, "checkpoint_candidates: cannot open %s\n",
                   path.c_str());
      return std::nullopt;
    }
    streams.push_back(&file);
  }
  return checkpoint_candidates(std::span<std::istream* const>(streams),
                               component, front_only, std::move(family));
}

}  // namespace axc::core
