// Operand-stream generation for power estimation.
//
// The paper evaluates multipliers under the *application's* operand
// statistics: operand A (coefficient / NN weight) follows the distribution
// D, operand B (pixel / activation) is modelled as uniform.  A workload is
// a sequence of packed input assignments in the simulator convention
// (operand A in bits 0..w-1, operand B in bits w..2w-1), ready for
// circuit::profile_activity / tech::analyze.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/pmf.h"
#include "metrics/mult_spec.h"
#include "support/rng.h"

namespace axc::core {

/// `samples` operand pairs with A ~ d and B uniform.
std::vector<std::uint64_t> make_multiplier_workload(
    const metrics::mult_spec& spec, const dist::pmf& d, std::size_t samples,
    rng& gen);

/// MAC workload: operands as above plus a uniform accumulator input in bits
/// 2w .. 2w+acc_width-1 (models the running sum changing every cycle).
std::vector<std::uint64_t> make_mac_workload(const metrics::mult_spec& spec,
                                             const dist::pmf& d,
                                             unsigned acc_width,
                                             std::size_t samples, rng& gen);

}  // namespace axc::core
