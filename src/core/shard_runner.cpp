#include "core/shard_runner.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "circuit/serialize.h"
#include "core/node_pool.h"
#include "core/result_store.h"
#include "support/checksum.h"
#include "support/fault.h"
#include "support/io.h"
#include "support/launcher.h"
#include "support/subprocess.h"

namespace axc::core {

namespace {

constexpr std::string_view kSpecMagic = "axc-sweep-spec v1";
constexpr std::string_view kJournalMagic = "coord v1";

/// Coordinator crash points _Exit with 43 (44 is the store's mid-append
/// point) so tests distinguish an injected crash from real worker exits.
constexpr int kCoordCrashExit = 43;
constexpr std::string_view kFaultCrashAfterSpawn = "coord-crash-after-spawn";
constexpr std::string_view kFaultCrashMidMerge = "coord-crash-mid-merge";

/// Shortest exact decimal: %.17g round-trips every double through the
/// stream extractor (same convention as the session checkpoint format).
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::nullopt_t spec_error(const char* what) {
  std::fprintf(stderr, "axc: sweep spec: %s\n", what);
  return std::nullopt;
}

using clock = std::chrono::steady_clock;

/// Completed jobs visible in a shard checkpoint: the count of v2 job
/// record lines.  Netlist lines inside records start with "gate"/"out"/
/// "inputs"/"outputs", never "job ", so a plain scan is exact — and cheap
/// enough to run every supervision poll.
std::size_t count_checkpoint_jobs(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return 0;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  std::size_t count = 0;
  std::size_t pos = 0;
  while (true) {
    pos = text.find("\njob ", pos);
    if (pos == std::string::npos) break;
    ++count;
    pos += 5;
  }
  return count;
}

/// One worker process launched for a shard on some node.  A shard normally
/// has one; a straggler under speculation has two (primary + duplicate),
/// each writing its own local checkpoint path so they never contend.
struct shard_launch {
  std::size_t node{0};
  bool speculative{false};
  std::optional<support::subprocess> proc{};
  /// Where this launch's checkpoint lands on the *coordinator* (for a
  /// shared-filesystem node the worker writes it here directly).
  std::string checkpoint_path{};
  /// Paths on the node ( == the local paths when filesystems are shared).
  std::string remote_spec{};
  std::string remote_checkpoint{};
  clock::time_point started{};
  clock::time_point last_growth{};
  clock::time_point last_fetch{};
  std::size_t last_jobs{0};
  bool deadline_killed{false};
  bool node_died{false};  ///< killed by node-dead-midrun, already judged
};

struct shard_state {
  plan_shard part{};
  std::string spec_path{};
  std::string checkpoint_path{};  ///< primary path: resume + merge identity
  std::uint64_t store_key{0};  ///< this shard spec's result-store identity
  std::vector<shard_launch> launches{};
  std::size_t attempt{0};
  clock::time_point next_spawn{};
  /// Nodes recent failures ran on — avoided (softly) at the next lease.
  std::vector<std::size_t> avoid_nodes{};
  bool speculated{false};  ///< one duplicate per shard, ever
  bool winner_seen{false};
  /// Attempts ran out while a speculative duplicate was still running; the
  /// duplicate's own death settles the shard as failed.
  bool exhausted{false};
  bool done{false};
  bool failed{false};
  shard_outcome outcome{};
};

[[nodiscard]] std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// ---- Coordinator journal ------------------------------------------------
//
// Append-only record of supervision milestones under
// `<work_dir>/coordinator.journal`, every line `<body> crc <8hex>` (CRC32
// over the body) with the session-v2 salvage rule: a damaged line is
// dropped, scanning resyncs at the next newline.  Grammar:
//
//   coord v1 key <16hex>          header; key = sweep_spec::store_key()
//   spawn <shard> <attempt>       worker launched (attempts cumulative
//                                 across coordinator lives)
//   lease <shard> <node> <what>   shard leased to a node; <what> is the
//                                 attempt number or "spec" (duplicate)
//   fetch <shard> <node> <how>    checkpoint pull: ok / torn / fail
//   release <shard> <node> <why>  lease ended without winning: exit<code>,
//                                 torn, dead, superseded, drain, launch
//   complete <shard>              a CRC-valid completed checkpoint won
//   fail <shard> <exit>           attempts exhausted in some life
//   publish <kind> <key> <16hex>  object landed in the result store
//   done                          front published; sweep fully finished
//
// lease/fetch/release are diagnostic truth, not replay state: load_journal
// ignores unknown tags (which is also what makes adding them replay-safe —
// a PR-7-era coordinator re-running this journal skips them cleanly).
//
// A re-run replays spawn/complete to resume supervision: completed shards
// are not respawned (their checkpoints merge directly) and attempt
// counters continue, so first-attempt-only shard_env poison stays applied
// exactly once per shard ever.  A missing, damaged or foreign-key journal
// degrades to a fresh sweep — correctness never depends on the journal
// (worker checkpoints carry the results); it only avoids redundant work
// and keeps attempt accounting truthful across lives.

[[nodiscard]] std::string journal_line(std::string_view body) {
  std::string line(body);
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", support::crc32(body));
  line += " crc ";
  line += buf;
  line += '\n';
  return line;
}

struct coord_journal {
  std::string path{};

  /// Durable append; failure is reported once (a lost journal only costs
  /// redundant work on the next life, never correctness).
  bool append(std::string_view body) {
    if (path.empty()) return false;
    {
      std::ofstream os(path, std::ios::binary | std::ios::app);
      if (!os) return false;
      const std::string line = journal_line(body);
      os.write(line.data(), static_cast<std::streamsize>(line.size()));
      os.flush();
      if (!os) return false;
    }
    return support::fsync_file(path);
  }
};

struct journal_replay {
  bool valid{false};  ///< header present with this sweep's key
  std::vector<std::size_t> attempts{};  ///< cumulative spawns per shard
  std::vector<bool> completed{};
};

[[nodiscard]] std::optional<std::uint64_t> parse_hex(const std::string& s) {
  if (s.empty() || s.size() > 16 ||
      s.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return std::nullopt;
  }
  return std::stoull(s, nullptr, 16);
}

journal_replay load_journal(const std::string& path, std::uint64_t key,
                            std::size_t shard_count) {
  journal_replay replay;
  replay.attempts.assign(shard_count, 0);
  replay.completed.assign(shard_count, false);
  std::ifstream is(path, std::ios::binary);
  if (!is) return replay;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t crc_at = line.rfind(" crc ");
    if (crc_at == std::string::npos) continue;  // damaged: drop, resync
    const auto stored = parse_hex(line.substr(crc_at + 5));
    const std::string body = line.substr(0, crc_at);
    if (!stored || *stored != support::crc32(body)) continue;
    std::istringstream ls(body);
    std::string tag;
    ls >> tag;
    if (!replay.valid) {
      // The first intact record must be a matching header; anything else
      // means a foreign or pre-header-damaged journal — start fresh.
      std::string version, kw, key_hex;
      if (tag != "coord" || !(ls >> version >> kw >> key_hex) ||
          "coord " + version != kJournalMagic || kw != "key") {
        return replay;
      }
      const auto found = parse_hex(key_hex);
      if (!found || *found != key) return replay;
      replay.valid = true;
      continue;
    }
    if (tag == "spawn") {
      std::size_t shard = 0, attempt = 0;
      if ((ls >> shard >> attempt) && shard < shard_count) {
        replay.attempts[shard] = std::max(replay.attempts[shard], attempt);
      }
    } else if (tag == "complete") {
      std::size_t shard = 0;
      if ((ls >> shard) && shard < shard_count) {
        replay.completed[shard] = true;
      }
    }
    // fail/publish/done need no replay: retries restart each life, and
    // publishing is idempotent (content-addressed puts).
  }
  return replay;
}

}  // namespace

component_handle sweep_spec::make_component() const {
  return component_registry::instance().make(component, options);
}

std::uint64_t sweep_spec::store_key() const {
  const component_handle handle = make_component();
  if (!handle) return 0;
  // The component fingerprint already covers every result-affecting option
  // (incl. the distribution masses bit-for-bit); fold in the plan the same
  // FNV-1a way so distinct target sets get distinct store identities.
  std::uint64_t h = handle.fingerprint();
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(plan.runs_per_target);
  mix(plan.targets.size());
  for (const double target : plan.targets) {
    mix(std::bit_cast<std::uint64_t>(target));
  }
  return h;
}

void sweep_spec::write(std::ostream& os) const {
  os << kSpecMagic << "\n";
  os << "component " << component << "\n";
  os << "width " << options.width << "\n";
  os << "signed " << (options.is_signed ? 1 : 0) << "\n";
  os << "iterations " << options.iterations << "\n";
  os << "extra-columns " << options.extra_columns << "\n";
  os << "max-mutations " << options.max_mutations << "\n";
  os << "lambda " << options.lambda << "\n";
  os << "threads " << options.threads << "\n";
  os << "error-tiebreak " << (options.error_tiebreak ? 1 : 0) << "\n";
  os << "incremental " << (options.incremental ? 1 : 0) << "\n";
  os << "rng-seed " << options.rng_seed << "\n";
  os << "distribution " << options.distribution.size();
  for (const double mass : options.distribution.masses()) {
    os << ' ' << format_double(mass);
  }
  os << "\n";
  os << "runs-per-target " << plan.runs_per_target << "\n";
  os << "targets " << plan.targets.size();
  for (const double target : plan.targets) {
    os << ' ' << format_double(target);
  }
  os << "\n";
  os << "seed-netlist\n";
  circuit::write_netlist(os, seed);
  os << "end\n";
}

bool sweep_spec::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write(os);
  os.flush();
  return os.good();
}

std::optional<sweep_spec> sweep_spec::read(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kSpecMagic) {
    return spec_error("bad magic line");
  }

  sweep_spec spec;
  const auto read_field = [&is, &line](const char* key, auto& value) {
    if (!std::getline(is, line)) return false;
    std::istringstream ls(line);
    std::string k;
    return static_cast<bool>(ls >> k >> value) && k == key;
  };

  int flag = 0;
  if (!read_field("component", spec.component)) {
    return spec_error("missing component line");
  }
  if (!read_field("width", spec.options.width)) {
    return spec_error("missing width line");
  }
  if (!read_field("signed", flag)) return spec_error("missing signed line");
  spec.options.is_signed = flag != 0;
  if (!read_field("iterations", spec.options.iterations)) {
    return spec_error("missing iterations line");
  }
  if (!read_field("extra-columns", spec.options.extra_columns)) {
    return spec_error("missing extra-columns line");
  }
  if (!read_field("max-mutations", spec.options.max_mutations)) {
    return spec_error("missing max-mutations line");
  }
  if (!read_field("lambda", spec.options.lambda)) {
    return spec_error("missing lambda line");
  }
  if (!read_field("threads", spec.options.threads)) {
    return spec_error("missing threads line");
  }
  if (!read_field("error-tiebreak", flag)) {
    return spec_error("missing error-tiebreak line");
  }
  spec.options.error_tiebreak = flag != 0;
  if (!read_field("incremental", flag)) {
    return spec_error("missing incremental line");
  }
  spec.options.incremental = flag != 0;
  if (!read_field("rng-seed", spec.options.rng_seed)) {
    return spec_error("missing rng-seed line");
  }

  {
    if (!std::getline(is, line)) return spec_error("missing distribution");
    std::istringstream ls(line);
    std::string k;
    std::size_t count = 0;
    if (!(ls >> k >> count) || k != "distribution" || count > (1u << 24)) {
      return spec_error("bad distribution line");
    }
    std::vector<double> masses(count);
    for (double& mass : masses) {
      if (!(ls >> mass)) return spec_error("truncated distribution line");
    }
    // from_masses, not from_weights: the renormalizing division is not
    // bit-stable across a text round trip, and the distribution feeds the
    // component fingerprint — a worker must rebuild the coordinator's pmf
    // exactly or its checkpoints would be rejected at merge time.
    if (count > 0) spec.options.distribution = dist::pmf::from_masses(masses);
  }
  if (!read_field("runs-per-target", spec.plan.runs_per_target)) {
    return spec_error("missing runs-per-target line");
  }
  {
    if (!std::getline(is, line)) return spec_error("missing targets line");
    std::istringstream ls(line);
    std::string k;
    std::size_t count = 0;
    if (!(ls >> k >> count) || k != "targets" || count > (1u << 24)) {
      return spec_error("bad targets line");
    }
    spec.plan.targets.resize(count);
    for (double& target : spec.plan.targets) {
      if (!(ls >> target)) return spec_error("truncated targets line");
    }
  }
  spec.options.runs_per_target = spec.plan.runs_per_target;

  if (!std::getline(is, line) || line != "seed-netlist") {
    return spec_error("missing seed-netlist section");
  }
  std::optional<circuit::netlist> seed = circuit::read_netlist(is);
  if (!seed) return spec_error("malformed seed netlist");
  spec.seed = *std::move(seed);
  if (!std::getline(is, line) || line != "end") {
    return spec_error("missing end marker");
  }
  return spec;
}

std::optional<sweep_spec> sweep_spec::read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return spec_error("cannot open spec file");
  return read(is);
}

std::vector<plan_shard> split_plan(const sweep_plan& plan,
                                   std::size_t shards) {
  std::vector<plan_shard> parts;
  if (plan.targets.empty()) return parts;
  const std::size_t n =
      std::clamp<std::size_t>(shards, 1, plan.targets.size());
  const std::size_t base = plan.targets.size() / n;
  const std::size_t surplus = plan.targets.size() % n;
  std::size_t next_target = 0;
  std::size_t job_offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    plan_shard part;
    part.job_offset = job_offset;
    part.plan.runs_per_target = plan.runs_per_target;
    const std::size_t take = base + (i < surplus ? 1 : 0);
    part.plan.targets.assign(plan.targets.begin() + next_target,
                             plan.targets.begin() + next_target + take);
    next_target += take;
    job_offset += part.plan.job_count();
    parts.push_back(std::move(part));
  }
  return parts;
}

namespace {

void emit(const shard_runner_config& config, const shard_state& s,
          shard_event_kind kind, int exit_code = 0, std::size_t jobs = 0,
          const std::string& node = {}) {
  if (!config.on_event) return;
  shard_event event;
  event.kind = kind;
  event.shard = s.outcome.shard;
  event.attempt = s.attempt;
  event.jobs_done = jobs;
  event.jobs_total = s.part.plan.job_count();
  event.exit_code = exit_code;
  event.node = node;
  config.on_event(event);
}

std::string basename_of(const std::string& path) {
  return std::filesystem::path(path).filename().string();
}

std::optional<std::string> read_file_text(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// A checkpoint is a valid *win* for a shard only when the v2 salvage path
/// accepts every section and recovers every job of the shard's plan — the
/// same gate merge_shards applies, run early so a torn fetch or truncated
/// file turns into a retry instead of a partial merge.
bool checkpoint_complete(const std::string& path,
                         const component_handle& component,
                         std::size_t expected_jobs) {
  resume_report report;
  auto session = search_session::resume_file(path, component, {}, &report);
  return session && report.jobs_dropped == 0 &&
         report.jobs_recovered == expected_jobs;
}

std::string reason_exit(int code) { return "exit" + std::to_string(code); }

/// Starts one worker launch for `s` on `node_idx` (a lease the caller
/// already acquired).  Returns false when the launch could not start —
/// push failure, injected node-launch-fail, spawn failure — with nothing
/// running; the caller settles the lease.
bool start_launch(const shard_runner_config& config, node_pool& pool,
                  shard_state& s, std::size_t node_idx, bool speculative,
                  coord_journal& journal) {
  const node_config& node = pool.config(node_idx);
  shard_launch l;
  l.node = node_idx;
  l.speculative = speculative;
  l.checkpoint_path =
      speculative ? s.checkpoint_path + ".dup" : s.checkpoint_path;
  if (speculative) {
    // The duplicate starts from scratch on its own path (determinism makes
    // the re-execution free); a stale dup from an earlier life would fake
    // heartbeats.
    std::error_code ec;
    std::filesystem::remove(l.checkpoint_path, ec);
  }
  if (node.shares_filesystem()) {
    l.remote_spec = s.spec_path;
    l.remote_checkpoint = l.checkpoint_path;
  } else {
    l.remote_spec = node.workdir + "/" + basename_of(s.spec_path);
    l.remote_checkpoint = node.workdir + "/" + basename_of(l.checkpoint_path);
  }

  if (auto victim = fault::fire(fault::points::node_launch_fail);
      victim && *victim == node_idx) {
    (void)journal.append("release " + std::to_string(s.outcome.shard) + " " +
                         node.name + " launch");
    return false;
  }

  const support::worker_launcher launcher = node.launcher();
  if (!node.shares_filesystem()) {
    if (!launcher.push_file(s.spec_path, l.remote_spec)) {
      (void)journal.append("release " + std::to_string(s.outcome.shard) +
                           " " + node.name + " launch");
      return false;
    }
    // Reassignment rides the checkpoint contract: push the shard's current
    // primary checkpoint so the new node *resumes* the dead node's
    // progress instead of recomputing it.
    std::error_code ec;
    if (!speculative && std::filesystem::exists(s.checkpoint_path, ec)) {
      if (!launcher.push_file(s.checkpoint_path, l.remote_checkpoint)) {
        (void)journal.append("release " + std::to_string(s.outcome.shard) +
                             " " + node.name + " launch");
        return false;
      }
    }
  }

  std::vector<std::string> argv = {
      node.worker.empty() ? config.worker_binary : node.worker, "--spec",
      l.remote_spec, "--checkpoint", l.remote_checkpoint};
  if (config.worker_autosave_generations > 0) {
    argv.push_back("--autosave-generations");
    argv.push_back(std::to_string(config.worker_autosave_generations));
  }
  std::vector<std::string> env = config.worker_env;
  if (!speculative && s.attempt == 1 &&
      s.outcome.shard < config.shard_env.size()) {
    const auto& extra = config.shard_env[s.outcome.shard];
    env.insert(env.end(), extra.begin(), extra.end());
  }
  l.proc = launcher.launch(argv, env);
  l.started = clock::now();
  l.last_growth = l.started;
  l.last_fetch = l.started;
  if (!l.proc) {
    (void)journal.append("release " + std::to_string(s.outcome.shard) + " " +
                         node.name + " launch");
    return false;
  }
  (void)journal.append(
      "lease " + std::to_string(s.outcome.shard) + " " + node.name + " " +
      (speculative ? std::string("spec") : std::to_string(s.attempt)));
  if (!speculative) {
    (void)journal.append("spawn " + std::to_string(s.outcome.shard) + " " +
                         std::to_string(s.attempt));
  }
  emit(config, s,
       speculative ? shard_event_kind::speculated : shard_event_kind::spawned,
       0, l.last_jobs, node.name);
  s.launches.push_back(std::move(l));
  return true;
}

/// Brings a successful launch's checkpoint to the coordinator and CRC-
/// validates it.  Shared filesystem: validate in place.  Remote: fetch to
/// a scratch path, inject node-fetch-torn, validate, and only then durably
/// land the bytes on the launch's local path.  Retries torn/failed fetches
/// (the window a flaky transport gets before the lease is judged failed).
bool retrieve_valid_checkpoint(const shard_runner_config& config,
                               const node_config& node, shard_state& s,
                               shard_launch& l,
                               const component_handle& component,
                               coord_journal& journal) {
  const std::size_t expected = s.part.plan.job_count();
  const std::string shard_str = std::to_string(s.outcome.shard);
  if (node.shares_filesystem()) {
    if (checkpoint_complete(l.checkpoint_path, component, expected)) {
      return true;
    }
    (void)journal.append("fetch " + shard_str + " " + node.name + " torn");
    emit(config, s, shard_event_kind::fetch_torn, 0, l.last_jobs, node.name);
    return false;
  }
  const support::worker_launcher launcher = node.launcher();
  const std::string scratch = l.checkpoint_path + ".fetch";
  std::error_code ec;
  for (std::size_t i = 0; i <= config.fetch_retries; ++i) {
    if (!launcher.fetch_file(l.remote_checkpoint, scratch)) {
      (void)journal.append("fetch " + shard_str + " " + node.name + " fail");
      continue;
    }
    if (auto cut = fault::fire(fault::points::node_fetch_torn)) {
      const auto size = std::filesystem::file_size(scratch, ec);
      if (!ec && *cut < size) std::filesystem::resize_file(scratch, *cut, ec);
    }
    if (checkpoint_complete(scratch, component, expected)) {
      const auto bytes = read_file_text(scratch);
      if (bytes && support::write_file_durable(l.checkpoint_path, *bytes)) {
        std::filesystem::remove(scratch, ec);
        (void)journal.append("fetch " + shard_str + " " + node.name + " ok");
        return true;
      }
    }
    (void)journal.append("fetch " + shard_str + " " + node.name + " torn");
    emit(config, s, shard_event_kind::fetch_torn, 0, l.last_jobs, node.name);
  }
  std::filesystem::remove(scratch, ec);
  return false;
}

/// Best-effort partial salvage from a remote node after an unsuccessful
/// exit: pull whatever checkpoint the node autosaved and adopt it as the
/// shard's primary when it knows *more* jobs — so a retry on another node
/// resumes the dead lease's progress and a failed shard still merges it.
void salvage_remote_partial(const node_config& node, shard_state& s,
                            shard_launch& l) {
  if (node.shares_filesystem()) return;
  const support::worker_launcher launcher = node.launcher();
  const std::string scratch = l.checkpoint_path + ".salvage";
  std::error_code ec;
  if (launcher.fetch_file(l.remote_checkpoint, scratch)) {
    if (count_checkpoint_jobs(scratch) >
        count_checkpoint_jobs(s.checkpoint_path)) {
      if (const auto bytes = read_file_text(scratch)) {
        (void)support::write_file_durable(s.checkpoint_path, *bytes);
      }
    }
  }
  std::filesystem::remove(scratch, ec);
}

sweep_result merge_shards(const sweep_spec& spec,
                          std::vector<shard_state>& states) {
  sweep_result result;
  result.by_job.assign(spec.plan.job_count(), std::nullopt);
  const component_handle component = spec.make_component();
  pareto_archive archive;
  for (shard_state& s : states) {
    // The mid-merge kill window: workers are done, their checkpoints are
    // durable, but the merged front was never assembled.  _Exit models
    // SIGKILL; a re-run respawns nothing (journal says complete), merges
    // the same checkpoints and lands the identical front.
    if (fault::fire(kFaultCrashMidMerge)) std::_Exit(kCoordCrashExit);
    s.outcome.jobs_total = s.part.plan.job_count();
    resume_report report;
    auto session = search_session::resume_file(s.checkpoint_path, component,
                                               {}, &report);
    if (session) {
      s.outcome.jobs_recovered = report.jobs_recovered;
      s.outcome.jobs_dropped = report.jobs_dropped;
      for (std::size_t local = 0; local < session->total_jobs(); ++local) {
        if (auto design = session->design(local)) {
          const std::size_t global = s.part.job_offset + local;
          archive.insert(pareto_point{design->wmed, design->area_um2, global});
          result.by_job[global] = *std::move(design);
        }
      }
    }
    result.shards.push_back(s.outcome);
  }
  result.front = archive.points();
  result.complete = true;
  for (auto& design : result.by_job) {
    if (design) {
      result.designs.push_back(*design);
    } else {
      result.complete = false;
    }
  }
  return result;
}

}  // namespace

sweep_result run_sweep(const sweep_spec& spec,
                       const shard_runner_config& config) {
  std::vector<shard_state> states;
  if (config.worker_binary.empty() || config.work_dir.empty()) {
    std::fprintf(stderr,
                 "axc: run_sweep: worker_binary and work_dir are required\n");
    sweep_result empty;
    empty.by_job.assign(spec.plan.job_count(), std::nullopt);
    return empty;
  }
  std::error_code ec;
  std::filesystem::create_directories(config.work_dir, ec);

  const std::uint64_t sweep_key = spec.store_key();
  const std::vector<plan_shard> parts = split_plan(spec.plan, config.shards);
  const std::string journal_path = config.work_dir + "/coordinator.journal";
  const journal_replay replay =
      load_journal(journal_path, sweep_key, parts.size());
  coord_journal journal{journal_path};
  if (!replay.valid) {
    // Fresh (or foreign/damaged) journal: durably replace it with just the
    // header — records then append behind it.
    if (!support::write_file_durable(
            journal_path,
            journal_line(std::string(kJournalMagic) + " key " +
                         hex16(sweep_key)))) {
      std::fprintf(stderr, "axc: run_sweep: cannot write %s\n",
                   journal_path.c_str());
    }
  }

  for (std::size_t i = 0; i < parts.size(); ++i) {
    shard_state s;
    s.part = parts[i];
    s.outcome.shard = i;
    const std::string stem =
        config.work_dir + "/shard-" + std::to_string(i);
    s.spec_path = stem + ".spec";
    s.checkpoint_path = stem + ".axc";
    sweep_spec shard_spec;
    shard_spec.component = spec.component;
    shard_spec.options = spec.options;
    shard_spec.options.runs_per_target = s.part.plan.runs_per_target;
    shard_spec.plan = s.part.plan;
    shard_spec.seed = spec.seed;
    s.store_key = shard_spec.store_key();
    if (!shard_spec.write_file(s.spec_path)) {
      std::fprintf(stderr, "axc: run_sweep: cannot write %s\n",
                   s.spec_path.c_str());
      s.failed = true;
    }
    // Journal replay: a shard some earlier coordinator life saw finish is
    // not respawned — its checkpoint merges directly — and attempt
    // numbering continues where that life stopped (spawn_attempt
    // pre-increments, so first-attempt-only shard_env never re-applies).
    s.attempt = replay.attempts[i];
    s.outcome.attempts = s.attempt;
    if (replay.completed[i] &&
        std::filesystem::exists(s.checkpoint_path, ec)) {
      s.done = true;
      s.winner_seen = true;
      s.outcome.completed = true;
      emit(config, s, shard_event_kind::completed, 0,
           count_checkpoint_jobs(s.checkpoint_path));
    }
    states.push_back(std::move(s));
  }

  const std::size_t max_attempts = std::max<std::size_t>(config.max_attempts, 1);
  shard_runner_config cfg = config;
  cfg.max_attempts = max_attempts;

  // The node fleet.  No nodes configured = one implicit local node with a
  // slot per shard (plus one for a speculative duplicate) — the single-box
  // behavior of the pre-multi-node runtime, launch for launch.
  const bool implicit_local = cfg.nodes.empty();
  std::vector<node_config> fleet = cfg.nodes;
  if (implicit_local) {
    node_config local;
    local.name = "local";
    local.slots = parts.size() + 1;
    fleet.push_back(std::move(local));
  }
  node_pool pool(fleet, cfg.nodes_policy);
  const component_handle component = spec.make_component();

  const auto backoff_delay = [&cfg](std::size_t attempt) {
    double scale = 1.0;
    for (std::size_t a = 1; a < attempt; ++a) scale *= cfg.backoff_factor;
    return std::chrono::milliseconds(
        static_cast<std::int64_t>(cfg.backoff.count() * scale));
  };

  bool drained = false;
  while (true) {
    if (cfg.should_stop && cfg.should_stop()) {
      // Graceful drain: take the live workers down hard (their autosaved
      // checkpoints are the durable state; a SIGKILL here is exactly the
      // crash the resume path already survives) and fall through to the
      // partial merge.  Re-running the same spec + work_dir later resumes.
      drained = true;
      for (shard_state& s : states) {
        for (shard_launch& l : s.launches) {
          if (!l.proc) continue;
          l.proc->kill_hard();
          l.proc.reset();  // blocks until the worker is reaped
          pool.release(l.node);
          (void)journal.append("release " + std::to_string(s.outcome.shard) +
                               " " + pool.config(l.node).name + " drain");
          emit(cfg, s, shard_event_kind::drained, 0, l.last_jobs,
               pool.config(l.node).name);
        }
        s.launches.clear();
      }
      break;
    }
    const auto now = clock::now();

    // Injected node death (fault::points::node_dead_midrun, payload = node
    // index): every launch on the victim dies and the node is quarantined
    // at once — the deterministic stand-in for a host losing power.
    if (fault::active()) {
      if (const auto victim = fault::fire(fault::points::node_dead_midrun);
          victim && *victim < pool.size()) {
        pool.mark_dead(*victim, now);
        for (shard_state& s : states) {
          for (shard_launch& l : s.launches) {
            if (l.node == *victim && l.proc) {
              l.proc->kill_hard();
              l.node_died = true;
            }
          }
        }
      }
    }

    bool pending = false;
    for (shard_state& s : states) {
      if (s.done || s.failed) continue;

      // Reap finished launches; supervise the rest.
      for (std::size_t li = 0; li < s.launches.size();) {
        shard_launch& l = s.launches[li];
        const node_config& node = pool.config(l.node);
        const auto status = l.proc->poll();
        if (!status) {
          // Heartbeat: checkpoint growth is the worker's progress signal.
          // Shared filesystem reads the file directly; remote launches
          // pull a copy every fetch_interval.  node-heartbeat-stall
          // suppresses the observation, making a healthy worker look
          // stalled — the supervision must then kill and retry it.
          std::size_t jobs = l.last_jobs;
          bool observed = false;
          if (node.shares_filesystem()) {
            if (!fault::fire(fault::points::node_heartbeat_stall)) {
              jobs = count_checkpoint_jobs(l.checkpoint_path);
              observed = true;
            }
          } else if (now - l.last_fetch >= cfg.fetch_interval) {
            l.last_fetch = now;
            if (!fault::fire(fault::points::node_heartbeat_stall)) {
              const std::string hb = l.checkpoint_path + ".hb";
              if (node.launcher().fetch_file(l.remote_checkpoint, hb)) {
                jobs = count_checkpoint_jobs(hb);
                observed = true;
              }
              std::error_code hb_ec;
              std::filesystem::remove(hb, hb_ec);
            }
          }
          if (observed && jobs > l.last_jobs) {
            l.last_jobs = jobs;
            l.last_growth = now;
            emit(cfg, s, shard_event_kind::heartbeat, 0, jobs, node.name);
          }
          if (!l.deadline_killed && cfg.attempt_timeout.count() > 0 &&
              now - l.started > cfg.attempt_timeout) {
            l.deadline_killed = true;
            emit(cfg, s, shard_event_kind::timed_out, 0, l.last_jobs,
                 node.name);
            l.proc->kill_hard();
          } else if (!l.deadline_killed && cfg.stall_timeout.count() > 0 &&
                     now - l.last_growth > cfg.stall_timeout) {
            l.deadline_killed = true;
            emit(cfg, s, shard_event_kind::stalled, 0, l.last_jobs,
                 node.name);
            l.proc->kill_hard();
          }
          ++li;
          continue;
        }

        // The launch finished.  A clean exit only *wins* the shard once
        // its checkpoint is fetched and CRC-valid; anything else is a
        // failed lease.
        l.proc.reset();
        if (l.deadline_killed) s.outcome.timed_out = true;
        const bool was_speculative = l.speculative;
        if (status->success() &&
            retrieve_valid_checkpoint(cfg, node, s, l, component, journal)) {
          pool.release_success(l.node);
          if (!s.winner_seen) {
            s.winner_seen = true;
            s.outcome.completed = true;
            s.outcome.last_exit_code = 0;
            s.outcome.node = node.name;
            s.outcome.speculative_win = l.speculative;
            // Stop the losers BEFORE touching the primary path — a loser
            // on a shared filesystem is still writing it.
            if (!cfg.speculation_keep_losers) {
              for (std::size_t lj = 0; lj < s.launches.size(); ++lj) {
                if (lj == li) continue;
                shard_launch& other = s.launches[lj];
                if (other.proc) {
                  other.proc->kill_hard();
                  other.proc.reset();
                }
                pool.release(other.node);
                (void)journal.append(
                    "release " + std::to_string(s.outcome.shard) + " " +
                    pool.config(other.node).name + " superseded");
              }
              shard_launch winner = std::move(s.launches[li]);
              s.launches.clear();
              s.launches.push_back(std::move(winner));
              li = 0;
            }
            // Land the winning bytes on the primary path (merge identity).
            // A keep_losers primary completing later rewrites it with the
            // same bytes — determinism makes the overlap benign.
            shard_launch& w = s.launches[li];
            if (w.checkpoint_path != s.checkpoint_path) {
              if (const auto bytes = read_file_text(w.checkpoint_path)) {
                (void)support::write_file_durable(s.checkpoint_path, *bytes);
              }
            }
            (void)journal.append("complete " +
                                 std::to_string(s.outcome.shard));
            emit(cfg, s, shard_event_kind::completed, 0, w.last_jobs,
                 node.name);
          }
          // A keep_losers loser just leaves its checkpoint on disk for
          // inspection (the byte-equality assertion reads it).
          s.launches.erase(s.launches.begin() + li);
          continue;
        }

        // Failed lease: judge the node, salvage partial progress, and let
        // the reconcile step below decide retry vs. exhaustion.
        if (l.node_died) {
          pool.release(l.node);  // already judged by mark_dead
        } else {
          pool.release_failure(l.node, now);
        }
        s.outcome.last_exit_code = status->code;
        const std::string reason = l.node_died ? std::string("dead")
                                   : status->success()
                                       ? std::string("torn")
                                       : reason_exit(status->code);
        (void)journal.append("release " + std::to_string(s.outcome.shard) +
                             " " + node.name + " " + reason);
        emit(cfg, s, shard_event_kind::exited, status->code, l.last_jobs,
             node.name);
        if (!was_speculative) salvage_remote_partial(node, s, l);
        s.avoid_nodes.assign(1, l.node);
        s.launches.erase(s.launches.begin() + li);
        if (!was_speculative && !s.winner_seen) {
          if (s.attempt >= cfg.max_attempts) {
            if (s.launches.empty()) {
              s.failed = true;
              (void)journal.append("fail " +
                                   std::to_string(s.outcome.shard) + " " +
                                   std::to_string(status->code));
              emit(cfg, s, shard_event_kind::failed, status->code);
            } else {
              // A speculative duplicate still carries the shard; only its
              // death finishes the verdict (reconcile below).
              s.exhausted = true;
            }
          } else {
            s.next_spawn = now + backoff_delay(s.attempt);
            emit(cfg, s, shard_event_kind::retrying, status->code);
          }
        }
      }

      // Speculation: the shard's single primary launch has been running
      // past speculate_after — duplicate it on another node (once).  The
      // first CRC-valid completed checkpoint wins; bit-identity makes the
      // race harmless.
      if (cfg.speculate_after.count() > 0 && !s.speculated &&
          !s.winner_seen && s.launches.size() == 1 &&
          !s.launches[0].speculative &&
          now - s.launches[0].started > cfg.speculate_after) {
        const std::vector<std::size_t> avoid{s.launches[0].node};
        if (const auto n = pool.acquire(now, avoid)) {
          s.speculated = true;
          if (!start_launch(cfg, pool, s, *n, true, journal)) {
            pool.release_failure(*n, now);
          }
        }
      }

      // Reconcile: finalize a won shard, respawn a dead one, or declare
      // it failed once attempts are exhausted with nothing running.
      if (!s.done && !s.failed && s.launches.empty()) {
        if (s.winner_seen) {
          s.done = true;
        } else if (s.exhausted) {
          s.failed = true;
          (void)journal.append("fail " + std::to_string(s.outcome.shard) +
                               " " +
                               std::to_string(s.outcome.last_exit_code));
          emit(cfg, s, shard_event_kind::failed, s.outcome.last_exit_code);
        } else if (now >= s.next_spawn) {
          if (const auto n = pool.acquire(now, s.avoid_nodes)) {
            ++s.attempt;
            s.outcome.attempts = s.attempt;
            if (start_launch(cfg, pool, s, *n, false, journal)) {
              // The after-spawn kill window: the journal says this attempt
              // exists, nothing has finished.  Take the workers down with
              // the coordinator (a real SIGKILL of the process group does
              // the same) so the re-run supervises from checkpoints alone.
              if (fault::fire(kFaultCrashAfterSpawn)) {
                for (shard_state& victim : states) {
                  for (shard_launch& vl : victim.launches) {
                    if (vl.proc) vl.proc->kill_hard();
                  }
                }
                std::_Exit(kCoordCrashExit);
              }
            } else {
              pool.release_failure(*n, now);
              s.avoid_nodes.assign(1, *n);
              if (s.attempt >= cfg.max_attempts) {
                s.failed = true;
                s.outcome.last_exit_code = 127;
                (void)journal.append(
                    "fail " + std::to_string(s.outcome.shard) + " 127");
                emit(cfg, s, shard_event_kind::failed, 127);
              } else {
                s.next_spawn = now + backoff_delay(s.attempt);
                emit(cfg, s, shard_event_kind::retrying, 127);
              }
            }
          }
          // No eligible node right now: hold the shard until quarantine /
          // backoff clocks release one.
        }
      }

      if (!s.done && !s.failed) pending = true;
    }
    if (!pending) break;
    std::this_thread::sleep_for(cfg.poll_interval);
  }

  sweep_result result = merge_shards(spec, states);
  result.drained = drained;
  if (!implicit_local) result.nodes = pool.report();

  if (!cfg.store_dir.empty()) {
    // Publish into the result store.  Content-addressed puts make this
    // idempotent, so every coordinator life re-publishes unconditionally
    // and the store converges on the uninterrupted run's exact contents.
    auto store = result_store::open(cfg.store_dir);
    if (!store) {
      std::fprintf(stderr, "axc: run_sweep: cannot open store %s\n",
                   cfg.store_dir.c_str());
      return result;
    }
    for (const shard_state& s : states) {
      if (!s.outcome.completed) continue;
      std::ifstream is(s.checkpoint_path, std::ios::binary);
      if (!is) continue;
      std::ostringstream buffer;
      buffer << is.rdbuf();
      const std::string key = result_store::format_key(s.store_key);
      if (const auto hash = store->put("session", key, buffer.str())) {
        (void)journal.append("publish session " + key + " " + hex16(*hash));
      } else {
        std::fprintf(stderr, "axc: run_sweep: session publish failed (%s)\n",
                     key.c_str());
      }
    }
    if (result.complete) {
      // Alongside the front, publish the component's compiled behavioural
      // table (kind "table", keyed by the bare component fingerprint — the
      // plan can't change a truth table) so the server can hand out
      // characterization artifacts without re-simulating.  ~2^2w lookups'
      // worth of work, negligible next to the sweep that just finished.
      if (const component_handle component = spec.make_component()) {
        const std::string tkey =
            result_store::format_key(component.fingerprint());
        const std::string table = serialize_table(
            component.width(), component.characterize(spec.seed));
        if (const auto hash = store->put("table", tkey, table)) {
          (void)journal.append("publish table " + tkey + " " + hex16(*hash));
        } else {
          std::fprintf(stderr, "axc: run_sweep: table publish failed (%s)\n",
                       tkey.c_str());
        }
      }
      const std::string key = result_store::format_key(sweep_key);
      if (const auto hash =
              store->put("front", key, serialize_front(result.front))) {
        (void)journal.append("publish front " + key + " " + hex16(*hash));
        (void)journal.append("done");
      } else {
        std::fprintf(stderr, "axc: run_sweep: front publish failed (%s)\n",
                     key.c_str());
      }
    }
  }

  return result;
}

sweep_result run_sweep_inprocess(const sweep_spec& spec,
                                 session_config options) {
  sweep_result result;
  result.by_job.assign(spec.plan.job_count(), std::nullopt);
  const component_handle component = spec.make_component();
  if (!component) {
    std::fprintf(stderr, "axc: run_sweep_inprocess: unknown component '%s'\n",
                 spec.component.c_str());
    return result;
  }
  search_session session(component, spec.seed, spec.plan,
                         std::move(options));
  session.run();
  result.complete = session.finished();
  result.designs = session.designs();
  result.front = session.front();
  for (std::size_t id = 0; id < session.total_jobs(); ++id) {
    result.by_job[id] = session.design(id);
  }
  return result;
}

}  // namespace axc::core
