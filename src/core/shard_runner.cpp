#include "core/shard_runner.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "circuit/serialize.h"
#include "core/result_store.h"
#include "support/checksum.h"
#include "support/fault.h"
#include "support/io.h"
#include "support/subprocess.h"

namespace axc::core {

namespace {

constexpr std::string_view kSpecMagic = "axc-sweep-spec v1";
constexpr std::string_view kJournalMagic = "coord v1";

/// Coordinator crash points _Exit with 43 (44 is the store's mid-append
/// point) so tests distinguish an injected crash from real worker exits.
constexpr int kCoordCrashExit = 43;
constexpr std::string_view kFaultCrashAfterSpawn = "coord-crash-after-spawn";
constexpr std::string_view kFaultCrashMidMerge = "coord-crash-mid-merge";

/// Shortest exact decimal: %.17g round-trips every double through the
/// stream extractor (same convention as the session checkpoint format).
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::nullopt_t spec_error(const char* what) {
  std::fprintf(stderr, "axc: sweep spec: %s\n", what);
  return std::nullopt;
}

using clock = std::chrono::steady_clock;

/// Completed jobs visible in a shard checkpoint: the count of v2 job
/// record lines.  Netlist lines inside records start with "gate"/"out"/
/// "inputs"/"outputs", never "job ", so a plain scan is exact — and cheap
/// enough to run every supervision poll.
std::size_t count_checkpoint_jobs(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return 0;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  std::size_t count = 0;
  std::size_t pos = 0;
  while (true) {
    pos = text.find("\njob ", pos);
    if (pos == std::string::npos) break;
    ++count;
    pos += 5;
  }
  return count;
}

struct shard_state {
  plan_shard part{};
  std::string spec_path{};
  std::string checkpoint_path{};
  std::uint64_t store_key{0};  ///< this shard spec's result-store identity
  std::optional<support::subprocess> proc{};
  std::size_t attempt{0};
  clock::time_point started{};
  clock::time_point next_spawn{};
  clock::time_point last_growth{};
  std::size_t last_jobs{0};
  bool deadline_killed{false};
  bool done{false};
  bool failed{false};
  shard_outcome outcome{};
};

[[nodiscard]] std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// ---- Coordinator journal ------------------------------------------------
//
// Append-only record of supervision milestones under
// `<work_dir>/coordinator.journal`, every line `<body> crc <8hex>` (CRC32
// over the body) with the session-v2 salvage rule: a damaged line is
// dropped, scanning resyncs at the next newline.  Grammar:
//
//   coord v1 key <16hex>          header; key = sweep_spec::store_key()
//   spawn <shard> <attempt>       worker launched (attempts cumulative
//                                 across coordinator lives)
//   complete <shard>              a worker attempt exited 0
//   fail <shard> <exit>           attempts exhausted in some life
//   publish <kind> <key> <16hex>  object landed in the result store
//   done                          front published; sweep fully finished
//
// A re-run replays spawn/complete to resume supervision: completed shards
// are not respawned (their checkpoints merge directly) and attempt
// counters continue, so first-attempt-only shard_env poison stays applied
// exactly once per shard ever.  A missing, damaged or foreign-key journal
// degrades to a fresh sweep — correctness never depends on the journal
// (worker checkpoints carry the results); it only avoids redundant work
// and keeps attempt accounting truthful across lives.

[[nodiscard]] std::string journal_line(std::string_view body) {
  std::string line(body);
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", support::crc32(body));
  line += " crc ";
  line += buf;
  line += '\n';
  return line;
}

struct coord_journal {
  std::string path{};

  /// Durable append; failure is reported once (a lost journal only costs
  /// redundant work on the next life, never correctness).
  bool append(std::string_view body) {
    if (path.empty()) return false;
    {
      std::ofstream os(path, std::ios::binary | std::ios::app);
      if (!os) return false;
      const std::string line = journal_line(body);
      os.write(line.data(), static_cast<std::streamsize>(line.size()));
      os.flush();
      if (!os) return false;
    }
    return support::fsync_file(path);
  }
};

struct journal_replay {
  bool valid{false};  ///< header present with this sweep's key
  std::vector<std::size_t> attempts{};  ///< cumulative spawns per shard
  std::vector<bool> completed{};
};

[[nodiscard]] std::optional<std::uint64_t> parse_hex(const std::string& s) {
  if (s.empty() || s.size() > 16 ||
      s.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return std::nullopt;
  }
  return std::stoull(s, nullptr, 16);
}

journal_replay load_journal(const std::string& path, std::uint64_t key,
                            std::size_t shard_count) {
  journal_replay replay;
  replay.attempts.assign(shard_count, 0);
  replay.completed.assign(shard_count, false);
  std::ifstream is(path, std::ios::binary);
  if (!is) return replay;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t crc_at = line.rfind(" crc ");
    if (crc_at == std::string::npos) continue;  // damaged: drop, resync
    const auto stored = parse_hex(line.substr(crc_at + 5));
    const std::string body = line.substr(0, crc_at);
    if (!stored || *stored != support::crc32(body)) continue;
    std::istringstream ls(body);
    std::string tag;
    ls >> tag;
    if (!replay.valid) {
      // The first intact record must be a matching header; anything else
      // means a foreign or pre-header-damaged journal — start fresh.
      std::string version, kw, key_hex;
      if (tag != "coord" || !(ls >> version >> kw >> key_hex) ||
          "coord " + version != kJournalMagic || kw != "key") {
        return replay;
      }
      const auto found = parse_hex(key_hex);
      if (!found || *found != key) return replay;
      replay.valid = true;
      continue;
    }
    if (tag == "spawn") {
      std::size_t shard = 0, attempt = 0;
      if ((ls >> shard >> attempt) && shard < shard_count) {
        replay.attempts[shard] = std::max(replay.attempts[shard], attempt);
      }
    } else if (tag == "complete") {
      std::size_t shard = 0;
      if ((ls >> shard) && shard < shard_count) {
        replay.completed[shard] = true;
      }
    }
    // fail/publish/done need no replay: retries restart each life, and
    // publishing is idempotent (content-addressed puts).
  }
  return replay;
}

}  // namespace

component_handle sweep_spec::make_component() const {
  return component_registry::instance().make(component, options);
}

std::uint64_t sweep_spec::store_key() const {
  const component_handle handle = make_component();
  if (!handle) return 0;
  // The component fingerprint already covers every result-affecting option
  // (incl. the distribution masses bit-for-bit); fold in the plan the same
  // FNV-1a way so distinct target sets get distinct store identities.
  std::uint64_t h = handle.fingerprint();
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(plan.runs_per_target);
  mix(plan.targets.size());
  for (const double target : plan.targets) {
    mix(std::bit_cast<std::uint64_t>(target));
  }
  return h;
}

void sweep_spec::write(std::ostream& os) const {
  os << kSpecMagic << "\n";
  os << "component " << component << "\n";
  os << "width " << options.width << "\n";
  os << "signed " << (options.is_signed ? 1 : 0) << "\n";
  os << "iterations " << options.iterations << "\n";
  os << "extra-columns " << options.extra_columns << "\n";
  os << "max-mutations " << options.max_mutations << "\n";
  os << "lambda " << options.lambda << "\n";
  os << "threads " << options.threads << "\n";
  os << "error-tiebreak " << (options.error_tiebreak ? 1 : 0) << "\n";
  os << "incremental " << (options.incremental ? 1 : 0) << "\n";
  os << "rng-seed " << options.rng_seed << "\n";
  os << "distribution " << options.distribution.size();
  for (const double mass : options.distribution.masses()) {
    os << ' ' << format_double(mass);
  }
  os << "\n";
  os << "runs-per-target " << plan.runs_per_target << "\n";
  os << "targets " << plan.targets.size();
  for (const double target : plan.targets) {
    os << ' ' << format_double(target);
  }
  os << "\n";
  os << "seed-netlist\n";
  circuit::write_netlist(os, seed);
  os << "end\n";
}

bool sweep_spec::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write(os);
  os.flush();
  return os.good();
}

std::optional<sweep_spec> sweep_spec::read(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kSpecMagic) {
    return spec_error("bad magic line");
  }

  sweep_spec spec;
  const auto read_field = [&is, &line](const char* key, auto& value) {
    if (!std::getline(is, line)) return false;
    std::istringstream ls(line);
    std::string k;
    return static_cast<bool>(ls >> k >> value) && k == key;
  };

  int flag = 0;
  if (!read_field("component", spec.component)) {
    return spec_error("missing component line");
  }
  if (!read_field("width", spec.options.width)) {
    return spec_error("missing width line");
  }
  if (!read_field("signed", flag)) return spec_error("missing signed line");
  spec.options.is_signed = flag != 0;
  if (!read_field("iterations", spec.options.iterations)) {
    return spec_error("missing iterations line");
  }
  if (!read_field("extra-columns", spec.options.extra_columns)) {
    return spec_error("missing extra-columns line");
  }
  if (!read_field("max-mutations", spec.options.max_mutations)) {
    return spec_error("missing max-mutations line");
  }
  if (!read_field("lambda", spec.options.lambda)) {
    return spec_error("missing lambda line");
  }
  if (!read_field("threads", spec.options.threads)) {
    return spec_error("missing threads line");
  }
  if (!read_field("error-tiebreak", flag)) {
    return spec_error("missing error-tiebreak line");
  }
  spec.options.error_tiebreak = flag != 0;
  if (!read_field("incremental", flag)) {
    return spec_error("missing incremental line");
  }
  spec.options.incremental = flag != 0;
  if (!read_field("rng-seed", spec.options.rng_seed)) {
    return spec_error("missing rng-seed line");
  }

  {
    if (!std::getline(is, line)) return spec_error("missing distribution");
    std::istringstream ls(line);
    std::string k;
    std::size_t count = 0;
    if (!(ls >> k >> count) || k != "distribution" || count > (1u << 24)) {
      return spec_error("bad distribution line");
    }
    std::vector<double> masses(count);
    for (double& mass : masses) {
      if (!(ls >> mass)) return spec_error("truncated distribution line");
    }
    // from_masses, not from_weights: the renormalizing division is not
    // bit-stable across a text round trip, and the distribution feeds the
    // component fingerprint — a worker must rebuild the coordinator's pmf
    // exactly or its checkpoints would be rejected at merge time.
    if (count > 0) spec.options.distribution = dist::pmf::from_masses(masses);
  }
  if (!read_field("runs-per-target", spec.plan.runs_per_target)) {
    return spec_error("missing runs-per-target line");
  }
  {
    if (!std::getline(is, line)) return spec_error("missing targets line");
    std::istringstream ls(line);
    std::string k;
    std::size_t count = 0;
    if (!(ls >> k >> count) || k != "targets" || count > (1u << 24)) {
      return spec_error("bad targets line");
    }
    spec.plan.targets.resize(count);
    for (double& target : spec.plan.targets) {
      if (!(ls >> target)) return spec_error("truncated targets line");
    }
  }
  spec.options.runs_per_target = spec.plan.runs_per_target;

  if (!std::getline(is, line) || line != "seed-netlist") {
    return spec_error("missing seed-netlist section");
  }
  std::optional<circuit::netlist> seed = circuit::read_netlist(is);
  if (!seed) return spec_error("malformed seed netlist");
  spec.seed = *std::move(seed);
  if (!std::getline(is, line) || line != "end") {
    return spec_error("missing end marker");
  }
  return spec;
}

std::optional<sweep_spec> sweep_spec::read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return spec_error("cannot open spec file");
  return read(is);
}

std::vector<plan_shard> split_plan(const sweep_plan& plan,
                                   std::size_t shards) {
  std::vector<plan_shard> parts;
  if (plan.targets.empty()) return parts;
  const std::size_t n =
      std::clamp<std::size_t>(shards, 1, plan.targets.size());
  const std::size_t base = plan.targets.size() / n;
  const std::size_t surplus = plan.targets.size() % n;
  std::size_t next_target = 0;
  std::size_t job_offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    plan_shard part;
    part.job_offset = job_offset;
    part.plan.runs_per_target = plan.runs_per_target;
    const std::size_t take = base + (i < surplus ? 1 : 0);
    part.plan.targets.assign(plan.targets.begin() + next_target,
                             plan.targets.begin() + next_target + take);
    next_target += take;
    job_offset += part.plan.job_count();
    parts.push_back(std::move(part));
  }
  return parts;
}

namespace {

void emit(const shard_runner_config& config, const shard_state& s,
          shard_event_kind kind, int exit_code = 0) {
  if (!config.on_event) return;
  shard_event event;
  event.kind = kind;
  event.shard = s.outcome.shard;
  event.attempt = s.attempt;
  event.jobs_done = s.last_jobs;
  event.jobs_total = s.part.plan.job_count();
  event.exit_code = exit_code;
  config.on_event(event);
}

void spawn_attempt(const shard_runner_config& config, shard_state& s) {
  ++s.attempt;
  s.outcome.attempts = s.attempt;
  s.deadline_killed = false;
  std::vector<std::string> argv = {config.worker_binary, "--spec",
                                   s.spec_path, "--checkpoint",
                                   s.checkpoint_path};
  if (config.worker_autosave_generations > 0) {
    argv.push_back("--autosave-generations");
    argv.push_back(std::to_string(config.worker_autosave_generations));
  }
  std::vector<std::string> env = config.worker_env;
  if (s.attempt == 1 && s.outcome.shard < config.shard_env.size()) {
    const auto& extra = config.shard_env[s.outcome.shard];
    env.insert(env.end(), extra.begin(), extra.end());
  }
  s.proc = support::subprocess::spawn(argv, env);
  s.started = clock::now();
  s.last_growth = s.started;
  if (!s.proc) {
    // No process support (or fork failed) — nothing to retry against.
    s.failed = true;
    emit(config, s, shard_event_kind::failed, 127);
    return;
  }
  emit(config, s, shard_event_kind::spawned);
}

void handle_exit(const shard_runner_config& config, coord_journal& journal,
                 shard_state& s, support::exit_status status) {
  s.proc.reset();
  s.outcome.last_exit_code = status.code;
  if (status.success()) {
    s.done = true;
    s.outcome.completed = true;
    (void)journal.append("complete " + std::to_string(s.outcome.shard));
    emit(config, s, shard_event_kind::completed);
    return;
  }
  emit(config, s, shard_event_kind::exited, status.code);
  if (s.attempt >= config.max_attempts) {
    s.failed = true;
    (void)journal.append("fail " + std::to_string(s.outcome.shard) + " " +
                         std::to_string(status.code));
    emit(config, s, shard_event_kind::failed, status.code);
    return;
  }
  double scale = 1.0;
  for (std::size_t a = 1; a < s.attempt; ++a) scale *= config.backoff_factor;
  const auto delay = std::chrono::milliseconds(
      static_cast<std::int64_t>(config.backoff.count() * scale));
  s.next_spawn = clock::now() + delay;
  emit(config, s, shard_event_kind::retrying, status.code);
}

sweep_result merge_shards(const sweep_spec& spec,
                          std::vector<shard_state>& states) {
  sweep_result result;
  result.by_job.assign(spec.plan.job_count(), std::nullopt);
  const component_handle component = spec.make_component();
  pareto_archive archive;
  for (shard_state& s : states) {
    // The mid-merge kill window: workers are done, their checkpoints are
    // durable, but the merged front was never assembled.  _Exit models
    // SIGKILL; a re-run respawns nothing (journal says complete), merges
    // the same checkpoints and lands the identical front.
    if (fault::fire(kFaultCrashMidMerge)) std::_Exit(kCoordCrashExit);
    s.outcome.jobs_total = s.part.plan.job_count();
    resume_report report;
    auto session = search_session::resume_file(s.checkpoint_path, component,
                                               {}, &report);
    if (session) {
      s.outcome.jobs_recovered = report.jobs_recovered;
      s.outcome.jobs_dropped = report.jobs_dropped;
      for (std::size_t local = 0; local < session->total_jobs(); ++local) {
        if (auto design = session->design(local)) {
          const std::size_t global = s.part.job_offset + local;
          archive.insert(pareto_point{design->wmed, design->area_um2, global});
          result.by_job[global] = *std::move(design);
        }
      }
    }
    result.shards.push_back(s.outcome);
  }
  result.front = archive.points();
  result.complete = true;
  for (auto& design : result.by_job) {
    if (design) {
      result.designs.push_back(*design);
    } else {
      result.complete = false;
    }
  }
  return result;
}

}  // namespace

sweep_result run_sweep(const sweep_spec& spec,
                       const shard_runner_config& config) {
  std::vector<shard_state> states;
  if (config.worker_binary.empty() || config.work_dir.empty()) {
    std::fprintf(stderr,
                 "axc: run_sweep: worker_binary and work_dir are required\n");
    sweep_result empty;
    empty.by_job.assign(spec.plan.job_count(), std::nullopt);
    return empty;
  }
  std::error_code ec;
  std::filesystem::create_directories(config.work_dir, ec);

  const std::uint64_t sweep_key = spec.store_key();
  const std::vector<plan_shard> parts = split_plan(spec.plan, config.shards);
  const std::string journal_path = config.work_dir + "/coordinator.journal";
  const journal_replay replay =
      load_journal(journal_path, sweep_key, parts.size());
  coord_journal journal{journal_path};
  if (!replay.valid) {
    // Fresh (or foreign/damaged) journal: durably replace it with just the
    // header — records then append behind it.
    if (!support::write_file_durable(
            journal_path,
            journal_line(std::string(kJournalMagic) + " key " +
                         hex16(sweep_key)))) {
      std::fprintf(stderr, "axc: run_sweep: cannot write %s\n",
                   journal_path.c_str());
    }
  }

  for (std::size_t i = 0; i < parts.size(); ++i) {
    shard_state s;
    s.part = parts[i];
    s.outcome.shard = i;
    const std::string stem =
        config.work_dir + "/shard-" + std::to_string(i);
    s.spec_path = stem + ".spec";
    s.checkpoint_path = stem + ".axc";
    sweep_spec shard_spec;
    shard_spec.component = spec.component;
    shard_spec.options = spec.options;
    shard_spec.options.runs_per_target = s.part.plan.runs_per_target;
    shard_spec.plan = s.part.plan;
    shard_spec.seed = spec.seed;
    s.store_key = shard_spec.store_key();
    if (!shard_spec.write_file(s.spec_path)) {
      std::fprintf(stderr, "axc: run_sweep: cannot write %s\n",
                   s.spec_path.c_str());
      s.failed = true;
    }
    // Journal replay: a shard some earlier coordinator life saw finish is
    // not respawned — its checkpoint merges directly — and attempt
    // numbering continues where that life stopped (spawn_attempt
    // pre-increments, so first-attempt-only shard_env never re-applies).
    s.attempt = replay.attempts[i];
    s.outcome.attempts = s.attempt;
    if (replay.completed[i] &&
        std::filesystem::exists(s.checkpoint_path, ec)) {
      s.done = true;
      s.outcome.completed = true;
      s.last_jobs = count_checkpoint_jobs(s.checkpoint_path);
      emit(config, s, shard_event_kind::completed);
    }
    states.push_back(std::move(s));
  }

  const std::size_t max_attempts = std::max<std::size_t>(config.max_attempts, 1);
  shard_runner_config cfg = config;
  cfg.max_attempts = max_attempts;

  bool drained = false;
  while (true) {
    if (cfg.should_stop && cfg.should_stop()) {
      // Graceful drain: take the live workers down hard (their autosaved
      // checkpoints are the durable state; a SIGKILL here is exactly the
      // crash the resume path already survives) and fall through to the
      // partial merge.  Re-running the same spec + work_dir later resumes.
      drained = true;
      for (shard_state& s : states) {
        if (!s.proc) continue;
        s.proc->kill_hard();
        s.proc.reset();  // blocks until the worker is reaped
        emit(cfg, s, shard_event_kind::drained);
      }
      break;
    }
    const auto now = clock::now();
    bool pending = false;
    for (shard_state& s : states) {
      if (s.done || s.failed) continue;
      if (!s.proc) {
        if (now >= s.next_spawn) {
          spawn_attempt(cfg, s);
          if (s.proc) {
            (void)journal.append("spawn " +
                                 std::to_string(s.outcome.shard) + " " +
                                 std::to_string(s.attempt));
            // The after-spawn kill window: the journal says this attempt
            // exists, nothing has finished.  Take the workers down with
            // the coordinator (a real SIGKILL of the process group does
            // the same) so the re-run supervises from checkpoints alone.
            if (fault::fire(kFaultCrashAfterSpawn)) {
              for (shard_state& victim : states) {
                if (victim.proc) victim.proc->kill_hard();
              }
              std::_Exit(kCoordCrashExit);
            }
          }
        }
        if (s.done || s.failed) continue;
        pending = true;
        continue;
      }
      pending = true;
      if (auto status = s.proc->poll()) {
        if (s.deadline_killed) s.outcome.timed_out = true;
        handle_exit(cfg, journal, s, *status);
        continue;
      }
      // Heartbeat: checkpoint growth is the worker's progress signal.
      const std::size_t jobs = count_checkpoint_jobs(s.checkpoint_path);
      if (jobs > s.last_jobs) {
        s.last_jobs = jobs;
        s.last_growth = now;
        emit(cfg, s, shard_event_kind::heartbeat);
      }
      if (!s.deadline_killed && cfg.attempt_timeout.count() > 0 &&
          now - s.started > cfg.attempt_timeout) {
        s.deadline_killed = true;
        emit(cfg, s, shard_event_kind::timed_out);
        s.proc->kill_hard();
      } else if (!s.deadline_killed && cfg.stall_timeout.count() > 0 &&
                 now - s.last_growth > cfg.stall_timeout) {
        s.deadline_killed = true;
        emit(cfg, s, shard_event_kind::stalled);
        s.proc->kill_hard();
      }
    }
    if (!pending) break;
    std::this_thread::sleep_for(cfg.poll_interval);
  }

  sweep_result result = merge_shards(spec, states);
  result.drained = drained;

  if (!cfg.store_dir.empty()) {
    // Publish into the result store.  Content-addressed puts make this
    // idempotent, so every coordinator life re-publishes unconditionally
    // and the store converges on the uninterrupted run's exact contents.
    auto store = result_store::open(cfg.store_dir);
    if (!store) {
      std::fprintf(stderr, "axc: run_sweep: cannot open store %s\n",
                   cfg.store_dir.c_str());
      return result;
    }
    for (const shard_state& s : states) {
      if (!s.outcome.completed) continue;
      std::ifstream is(s.checkpoint_path, std::ios::binary);
      if (!is) continue;
      std::ostringstream buffer;
      buffer << is.rdbuf();
      const std::string key = result_store::format_key(s.store_key);
      if (const auto hash = store->put("session", key, buffer.str())) {
        (void)journal.append("publish session " + key + " " + hex16(*hash));
      } else {
        std::fprintf(stderr, "axc: run_sweep: session publish failed (%s)\n",
                     key.c_str());
      }
    }
    if (result.complete) {
      // Alongside the front, publish the component's compiled behavioural
      // table (kind "table", keyed by the bare component fingerprint — the
      // plan can't change a truth table) so the server can hand out
      // characterization artifacts without re-simulating.  ~2^2w lookups'
      // worth of work, negligible next to the sweep that just finished.
      if (const component_handle component = spec.make_component()) {
        const std::string tkey =
            result_store::format_key(component.fingerprint());
        const std::string table = serialize_table(
            component.width(), component.characterize(spec.seed));
        if (const auto hash = store->put("table", tkey, table)) {
          (void)journal.append("publish table " + tkey + " " + hex16(*hash));
        } else {
          std::fprintf(stderr, "axc: run_sweep: table publish failed (%s)\n",
                       tkey.c_str());
        }
      }
      const std::string key = result_store::format_key(sweep_key);
      if (const auto hash =
              store->put("front", key, serialize_front(result.front))) {
        (void)journal.append("publish front " + key + " " + hex16(*hash));
        (void)journal.append("done");
      } else {
        std::fprintf(stderr, "axc: run_sweep: front publish failed (%s)\n",
                     key.c_str());
      }
    }
  }

  return result;
}

sweep_result run_sweep_inprocess(const sweep_spec& spec,
                                 session_config options) {
  sweep_result result;
  result.by_job.assign(spec.plan.job_count(), std::nullopt);
  const component_handle component = spec.make_component();
  if (!component) {
    std::fprintf(stderr, "axc: run_sweep_inprocess: unknown component '%s'\n",
                 spec.component.c_str());
    return result;
  }
  search_session session(component, spec.seed, spec.plan,
                         std::move(options));
  session.run();
  result.complete = session.finished();
  result.designs = session.designs();
  result.front = session.front();
  for (std::size_t id = 0; id < session.total_jobs(); ++id) {
    result.by_job[id] = session.design(id);
  }
  return result;
}

}  // namespace axc::core
