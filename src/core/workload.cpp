#include "core/workload.h"

#include "support/assert.h"

namespace axc::core {

std::vector<std::uint64_t> make_multiplier_workload(
    const metrics::mult_spec& spec, const dist::pmf& d, std::size_t samples,
    rng& gen) {
  AXC_EXPECTS(d.size() == spec.operand_count());
  AXC_EXPECTS(samples >= 2);
  std::vector<std::uint64_t> workload(samples);
  const std::uint64_t b_mask = (std::uint64_t{1} << spec.width) - 1;
  for (auto& v : workload) {
    const std::uint64_t a = d.sample(gen);
    const std::uint64_t b = gen() & b_mask;
    v = a | (b << spec.width);
  }
  return workload;
}

std::vector<std::uint64_t> make_mac_workload(const metrics::mult_spec& spec,
                                             const dist::pmf& d,
                                             unsigned acc_width,
                                             std::size_t samples, rng& gen) {
  AXC_EXPECTS(2 * spec.width + acc_width <= 64);
  std::vector<std::uint64_t> workload =
      make_multiplier_workload(spec, d, samples, gen);
  const std::uint64_t acc_mask = (std::uint64_t{1} << acc_width) - 1;
  for (auto& v : workload) {
    v |= (gen() & acc_mask) << (2 * spec.width);
  }
  return workload;
}

}  // namespace axc::core
