#include "core/search_session.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string_view>
#include <utility>

#include "circuit/serialize.h"
#include "support/assert.h"
#include "support/thread_pool.h"

namespace axc::core {

namespace {

/// Shortest exact decimal representation: %.17g round-trips every double
/// through the stream extractor, so checkpointed scores and targets compare
/// bit-identical after resume.
std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::nullopt_t resume_error(const char* what) {
  std::fprintf(stderr, "axc: session resume: %s\n", what);
  return std::nullopt;
}

constexpr std::string_view kMagic = "axc-session v1";

/// Plan-size sanity bound for resume(): far above any real sweep (the
/// paper uses 14 targets x 25 runs) but small enough that a corrupted
/// count in a checkpoint is rejected instead of driving a huge allocation.
constexpr std::size_t kMaxPlanEntries = std::size_t{1} << 20;

}  // namespace

std::vector<sweep_job> sweep_plan::jobs() const {
  std::vector<sweep_job> expanded;
  expanded.reserve(job_count());
  std::size_t id = 0;
  for (const double target : targets) {
    for (std::size_t run = 0; run < runs_per_target; ++run) {
      expanded.push_back(sweep_job{id++, target, run});
    }
  }
  return expanded;
}

struct search_session::impl {
  impl(component_handle component_in, circuit::netlist seed_in,
       sweep_plan plan_in, session_config options_in)
      : component(std::move(component_in)),
        seed(std::move(seed_in)),
        plan(std::move(plan_in)),
        options(std::move(options_in)),
        jobs(plan.jobs()),
        results(jobs.size()) {
    AXC_EXPECTS(static_cast<bool>(component));
    // runs_per_target == 0 is a legal empty plan (legacy sweep() returned
    // an empty result for it).
    AXC_EXPECTS(seed.num_inputs() == component.seed_inputs());
    AXC_EXPECTS(seed.num_outputs() == component.seed_outputs());
  }

  [[nodiscard]] progress_event base_event(progress_kind kind,
                                          const sweep_job& job) const {
    progress_event event;
    event.kind = kind;
    event.job_id = job.id;
    event.target = job.target;
    event.run_index = job.run_index;
    event.completed_jobs = completed.load(std::memory_order_relaxed);
    event.total_jobs = jobs.size();
    return event;
  }

  /// Serializes observer callbacks on their own mutex, never the state
  /// lock: slow observers (logging every generation) only throttle each
  /// other, not workers updating results or readers calling
  /// designs()/front()/save().  Observers may therefore call any session
  /// accessor; no lock cycle exists because emit_mutex is never acquired
  /// while state_mutex is held.
  void emit(const progress_event& event) {
    if (!options.on_progress) return;
    std::scoped_lock lock(emit_mutex);
    options.on_progress(event);
  }

  void run_one(const sweep_job& job) {
    emit(base_event(progress_kind::job_started, job));

    search_hooks hooks;
    hooks.should_stop = [this] {
      return stop.load(std::memory_order_relaxed);
    };
    if (options.on_progress) {
      hooks.on_improvement = [this, job](std::size_t iteration,
                                         const cgp::evaluation& eval) {
        progress_event event = base_event(progress_kind::job_improved, job);
        event.generation = iteration + 1;
        event.wmed = eval.error;
        event.area_um2 = eval.area;
        emit(event);
      };
      if (options.generation_stride > 0) {
        const std::size_t stride = options.generation_stride;
        hooks.on_generation = [this, job, stride](
                                  std::size_t iteration,
                                  const cgp::evaluation& best) {
          if ((iteration + 1) % stride != 0) return;
          progress_event event =
              base_event(progress_kind::job_generation, job);
          event.generation = iteration + 1;
          event.wmed = best.error;
          event.area_um2 = best.area;
          emit(event);
        };
      }
    }

    std::optional<evolved_design> design =
        component.run_job(seed, job.target, job.run_index, hooks);
    if (!design) return;  // cancelled mid-run: the job stays pending

    // Publish under the state lock, notify outside it.  Reading the slot
    // afterwards without the lock is safe: each slot is written exactly
    // once, by this thread.
    const evolved_design* published = nullptr;
    {
      std::scoped_lock lock(state_mutex);
      archive.insert(pareto_point{design->wmed, design->area_um2, job.id});
      results[job.id] = std::move(*design);
      completed.fetch_add(1, std::memory_order_relaxed);
      published = &*results[job.id];
    }

    progress_event event = base_event(progress_kind::job_finished, job);
    event.generation = component.iterations();
    event.wmed = published->wmed;
    event.area_um2 = published->area_um2;
    emit(event);
    if (options.on_design) {
      std::scoped_lock lock(emit_mutex);
      options.on_design(*published);
    }
  }

  void run() {
    // No stop.store(false) here: a request_stop() racing run()'s start
    // must win (run nothing).  The request is consumed once, at exit.
    std::vector<sweep_job> pending;
    {
      std::scoped_lock lock(state_mutex);
      for (const sweep_job& job : jobs) {
        if (!results[job.id]) pending.push_back(job);
      }
    }

    if (!pending.empty()) {
      const std::size_t workers =
          std::min(std::max<std::size_t>(options.job_threads, 1),
                   pending.size());
      if (workers <= 1) {
        for (const sweep_job& job : pending) {
          if (stop.load(std::memory_order_relaxed)) break;
          run_one(job);
        }
      } else {
        thread_pool pool(workers);
        {
          std::scoped_lock lock(pool_mutex);
          active_pool = &pool;
        }
        for (const sweep_job& job : pending) {
          pool.submit([this, job] {
            if (!stop.load(std::memory_order_relaxed)) run_one(job);
          });
        }
        pool.wait_idle();
        {
          std::scoped_lock lock(pool_mutex);
          active_pool = nullptr;
        }
      }
    }

    // Consume the stop request so the next run() can re-run the abandoned
    // jobs; record a stop only if it actually cut work short (a request
    // landing after the final job completed does not make this run
    // "stopped").
    const bool requested = stop.exchange(false);
    last_run_stopped.store(
        requested && completed.load(std::memory_order_relaxed) != jobs.size());

    // Once-only terminal event, even if run() is called again on an
    // already-finished session.
    if (completed.load(std::memory_order_relaxed) == jobs.size() &&
        !finish_emitted.exchange(true)) {
      progress_event event;
      event.kind = progress_kind::session_finished;
      event.completed_jobs = jobs.size();
      event.total_jobs = jobs.size();
      emit(event);
    }
  }

  void save(std::ostream& os) const {
    std::scoped_lock lock(state_mutex);
    os << kMagic << "\n";
    os << "component " << component.name() << "\n";
    os << "width " << component.width() << "\n";
    os << "rng-seed " << component.rng_seed() << "\n";
    os << "iterations " << component.iterations() << "\n";
    os << "fingerprint " << component.fingerprint() << "\n";
    os << "runs-per-target " << plan.runs_per_target << "\n";
    os << "targets " << plan.targets.size();
    for (const double target : plan.targets) {
      os << " " << format_double(target);
    }
    os << "\n";
    os << "seed-netlist\n";
    circuit::write_netlist(os, seed);

    os << "completed " << completed.load(std::memory_order_relaxed) << "\n";
    for (std::size_t id = 0; id < results.size(); ++id) {
      if (!results[id]) continue;
      const evolved_design& design = *results[id];
      os << "job " << id << " target " << format_double(design.target)
         << " run " << design.run_index << " wmed "
         << format_double(design.wmed) << " area "
         << format_double(design.area_um2) << " evaluations "
         << design.evaluations << " improvements " << design.improvements
         << "\n";
      circuit::write_netlist(os, design.netlist);
    }
    os << "end\n";
  }

  component_handle component;
  circuit::netlist seed;
  sweep_plan plan;
  session_config options;
  std::vector<sweep_job> jobs;
  std::vector<std::optional<evolved_design>> results;  ///< by job id
  pareto_archive archive;
  std::atomic<bool> stop{false};
  std::atomic<bool> last_run_stopped{false};
  std::atomic<bool> finish_emitted{false};
  std::atomic<std::size_t> completed{0};
  /// Guards results/archive; never held while observer callbacks run.
  mutable std::mutex state_mutex;
  /// Serializes observer callbacks (on_progress/on_design).
  std::mutex emit_mutex;
  std::mutex pool_mutex;  ///< guards active_pool across run()/request_stop()
  thread_pool* active_pool{nullptr};
};

search_session::search_session(component_handle component,
                               circuit::netlist seed, sweep_plan plan,
                               session_config options)
    : impl_(std::make_unique<impl>(std::move(component), std::move(seed),
                                   std::move(plan), std::move(options))) {}

search_session::search_session(std::unique_ptr<impl> state)
    : impl_(std::move(state)) {}

search_session::search_session(search_session&&) noexcept = default;
search_session& search_session::operator=(search_session&&) noexcept =
    default;
search_session::~search_session() = default;

void search_session::run() { impl_->run(); }

void search_session::request_stop() {
  impl_->stop.store(true);
  std::scoped_lock lock(impl_->pool_mutex);
  if (impl_->active_pool != nullptr) impl_->active_pool->clear_pending();
}

bool search_session::stop_requested() const {
  return impl_->stop.load(std::memory_order_relaxed);
}

bool search_session::stopped() const {
  return impl_->last_run_stopped.load(std::memory_order_relaxed);
}

const component_handle& search_session::component() const {
  return impl_->component;
}

const circuit::netlist& search_session::seed() const { return impl_->seed; }

const sweep_plan& search_session::plan() const { return impl_->plan; }

std::size_t search_session::total_jobs() const { return impl_->jobs.size(); }

std::size_t search_session::completed_jobs() const {
  return impl_->completed.load(std::memory_order_relaxed);
}

bool search_session::finished() const {
  return completed_jobs() == total_jobs();
}

std::vector<evolved_design> search_session::designs() const {
  std::scoped_lock lock(impl_->state_mutex);
  std::vector<evolved_design> out;
  out.reserve(impl_->jobs.size());
  for (const auto& result : impl_->results) {
    if (result) out.push_back(*result);
  }
  return out;
}

std::optional<evolved_design> search_session::design(
    std::size_t job_id) const {
  std::scoped_lock lock(impl_->state_mutex);
  if (job_id >= impl_->results.size()) return std::nullopt;
  return impl_->results[job_id];
}

std::vector<pareto_point> search_session::front() const {
  std::scoped_lock lock(impl_->state_mutex);
  return impl_->archive.points();
}

void search_session::save(std::ostream& os) const { impl_->save(os); }

bool search_session::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  save(os);
  return static_cast<bool>(os);
}

std::optional<search_session> search_session::resume(
    std::istream& is, component_handle component, session_config options) {
  if (!component) return resume_error("empty component handle");

  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    return resume_error("bad magic line");
  }

  // `read_field("key", value)`: one "key value" line, keyword-checked.
  const auto read_field = [&is, &line](const char* key, auto& value) {
    if (!std::getline(is, line)) return false;
    std::istringstream ls(line);
    std::string k;
    return static_cast<bool>(ls >> k >> value) && k == key;
  };

  std::string name;
  if (!read_field("component", name)) {
    return resume_error("missing component line");
  }
  if (name != component.name()) {
    return resume_error("component name does not match the handle");
  }
  unsigned width = 0;
  if (!read_field("width", width) || width != component.width()) {
    return resume_error("component width does not match the handle");
  }
  std::uint64_t rng_seed = 0;
  if (!read_field("rng-seed", rng_seed) ||
      rng_seed != component.rng_seed()) {
    return resume_error("rng seed does not match the handle");
  }
  std::size_t iterations = 0;
  if (!read_field("iterations", iterations) ||
      iterations != component.iterations()) {
    return resume_error("iteration budget does not match the handle");
  }
  std::uint64_t fingerprint = 0;
  if (!read_field("fingerprint", fingerprint) ||
      fingerprint != component.fingerprint()) {
    return resume_error(
        "config fingerprint does not match the handle (distribution, "
        "budget, function set or tie-break policy differ)");
  }

  sweep_plan plan;
  if (!read_field("runs-per-target", plan.runs_per_target) ||
      plan.runs_per_target > kMaxPlanEntries) {
    return resume_error("bad runs-per-target line");
  }
  {
    if (!std::getline(is, line)) return resume_error("missing targets line");
    std::istringstream ls(line);
    std::string k;
    std::size_t count = 0;
    if (!(ls >> k >> count) || k != "targets" || count > kMaxPlanEntries) {
      return resume_error("bad targets line");
    }
    plan.targets.resize(count);
    for (double& target : plan.targets) {
      if (!(ls >> target)) return resume_error("truncated targets line");
    }
  }
  if (plan.runs_per_target != 0 &&
      plan.targets.size() > kMaxPlanEntries / plan.runs_per_target) {
    return resume_error("plan expansion too large");
  }

  if (!std::getline(is, line) || line != "seed-netlist") {
    return resume_error("missing seed-netlist section");
  }
  std::optional<circuit::netlist> seed = circuit::read_netlist(is);
  if (!seed) return resume_error("malformed seed netlist");
  if (seed->num_inputs() != component.seed_inputs() ||
      seed->num_outputs() != component.seed_outputs()) {
    return resume_error("seed netlist shape does not match the component");
  }

  std::size_t completed = 0;
  if (!read_field("completed", completed)) {
    return resume_error("bad completed line");
  }

  auto state = std::make_unique<impl>(std::move(component), *std::move(seed),
                                      std::move(plan), std::move(options));
  if (completed > state->jobs.size()) {
    return resume_error("completed count exceeds the plan");
  }

  for (std::size_t j = 0; j < completed; ++j) {
    if (!std::getline(is, line)) return resume_error("truncated job record");
    std::istringstream ls(line);
    std::string k0, k1, k2, k3, k4, k5, k6;
    std::size_t id = 0, run_index = 0, evaluations = 0, improvements = 0;
    double target = 0.0, wmed = 0.0, area = 0.0;
    if (!(ls >> k0 >> id >> k1 >> target >> k2 >> run_index >> k3 >> wmed >>
          k4 >> area >> k5 >> evaluations >> k6 >> improvements) ||
        k0 != "job" || k1 != "target" || k2 != "run" || k3 != "wmed" ||
        k4 != "area" || k5 != "evaluations" || k6 != "improvements") {
      return resume_error("malformed job record");
    }
    if (id >= state->jobs.size() || state->results[id].has_value()) {
      return resume_error("job record id out of range or duplicated");
    }
    if (target != state->jobs[id].target ||
        run_index != state->jobs[id].run_index) {
      return resume_error("job record does not match the plan expansion");
    }
    std::optional<circuit::netlist> nl = circuit::read_netlist(is);
    if (!nl) return resume_error("malformed job netlist");
    if (nl->num_inputs() != state->seed.num_inputs() ||
        nl->num_outputs() != state->seed.num_outputs()) {
      return resume_error("job netlist shape does not match the component");
    }
    state->archive.insert(pareto_point{wmed, area, id});
    state->results[id] = evolved_design{*std::move(nl), wmed,       area,
                                        target,         run_index,  evaluations,
                                        improvements};
  }
  state->completed.store(completed, std::memory_order_relaxed);

  if (!std::getline(is, line) || line != "end") {
    return resume_error("missing end marker");
  }
  return search_session(std::move(state));
}

std::optional<search_session> search_session::resume_file(
    const std::string& path, component_handle component,
    session_config options) {
  std::ifstream is(path);
  if (!is) return resume_error("cannot open checkpoint file");
  return resume(is, std::move(component), std::move(options));
}

}  // namespace axc::core
