#include "core/search_session.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string_view>
#include <utility>

#include "circuit/serialize.h"
#include "support/assert.h"
#include "support/checksum.h"
#include "support/fault.h"
#include "support/io.h"
#include "support/thread_pool.h"

namespace axc::core {

namespace {

/// Shortest exact decimal representation: %.17g round-trips every double
/// through the stream extractor, so checkpointed scores and targets compare
/// bit-identical after resume.
std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::nullopt_t resume_error(const char* what) {
  std::fprintf(stderr, "axc: session resume: %s\n", what);
  return std::nullopt;
}

constexpr std::string_view kMagicV1 = "axc-session v1";
constexpr std::string_view kMagicV2 = "axc-session v2";

/// Plan-size sanity bound for resume(): far above any real sweep (the
/// paper uses 14 targets x 25 runs) but small enough that a corrupted
/// count in a checkpoint is rejected instead of driving a huge allocation.
constexpr std::size_t kMaxPlanEntries = std::size_t{1} << 20;

std::string format_crc(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

bool starts_with(std::string_view line, std::string_view prefix) {
  return line.substr(0, prefix.size()) == prefix;
}

/// Line cursor over an in-memory checkpoint, tracking byte offsets so CRC
/// ranges can be recomputed exactly as written.
struct text_lines {
  std::string_view text;
  std::size_t pos{0};

  struct entry {
    std::size_t start;       ///< byte offset of the line's first character
    std::string_view line;   ///< without the trailing newline
  };

  std::optional<entry> next() {
    if (pos >= text.size()) return std::nullopt;
    const std::size_t start = pos;
    const std::size_t nl = text.find('\n', pos);
    std::string_view line;
    if (nl == std::string_view::npos) {
      line = text.substr(pos);
      pos = text.size();
    } else {
      line = text.substr(pos, nl - pos);
      pos = nl + 1;
    }
    return entry{start, line};
  }
};

/// Parses one circuit::write_netlist block starting at the cursor; leaves
/// the cursor just past the terminating "out" line.  nullopt when the
/// block is malformed or runs into checkpoint structure lines (truncation).
std::optional<circuit::netlist> parse_netlist_block(text_lines& cur) {
  const std::size_t start = cur.pos;
  while (auto l = cur.next()) {
    if (l->line == "out" || starts_with(l->line, "out ")) {
      std::istringstream is{
          std::string(cur.text.substr(start, cur.pos - start))};
      return circuit::read_netlist(is);
    }
    if (starts_with(l->line, "crc ") || starts_with(l->line, "job ") ||
        starts_with(l->line, "end")) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

/// Parses a "crc <8-hex>" line into its value.
std::optional<std::uint32_t> parse_crc_line(std::string_view line) {
  if (!starts_with(line, "crc ")) return std::nullopt;
  std::istringstream is{std::string(line.substr(4))};
  std::uint32_t crc = 0;
  if (!(is >> std::hex >> crc)) return std::nullopt;
  std::string rest;
  if (is >> rest) return std::nullopt;
  return crc;
}

}  // namespace

std::vector<sweep_job> sweep_plan::jobs() const {
  std::vector<sweep_job> expanded;
  expanded.reserve(job_count());
  std::size_t id = 0;
  for (const double target : targets) {
    for (std::size_t run = 0; run < runs_per_target; ++run) {
      expanded.push_back(sweep_job{id++, target, run});
    }
  }
  return expanded;
}

struct search_session::impl {
  impl(component_handle component_in, circuit::netlist seed_in,
       sweep_plan plan_in, session_config options_in)
      : component(std::move(component_in)),
        seed(std::move(seed_in)),
        plan(std::move(plan_in)),
        options(std::move(options_in)),
        jobs(plan.jobs()),
        results(jobs.size()) {
    AXC_EXPECTS(static_cast<bool>(component));
    // runs_per_target == 0 is a legal empty plan (legacy sweep() returned
    // an empty result for it).
    AXC_EXPECTS(seed.num_inputs() == component.seed_inputs());
    AXC_EXPECTS(seed.num_outputs() == component.seed_outputs());
  }

  [[nodiscard]] progress_event base_event(progress_kind kind,
                                          const sweep_job& job) const {
    progress_event event;
    event.kind = kind;
    event.job_id = job.id;
    event.target = job.target;
    event.run_index = job.run_index;
    event.completed_jobs = completed.load(std::memory_order_relaxed);
    event.total_jobs = jobs.size();
    return event;
  }

  /// Serializes observer callbacks on their own mutex, never the state
  /// lock: slow observers (logging every generation) only throttle each
  /// other, not workers updating results or readers calling
  /// designs()/front()/save().  Observers may therefore call any session
  /// accessor; no lock cycle exists because emit_mutex is never acquired
  /// while state_mutex is held.
  void emit(const progress_event& event) {
    if (!options.on_progress) return;
    std::scoped_lock lock(emit_mutex);
    options.on_progress(event);
  }

  void run_one(const sweep_job& job) {
    emit(base_event(progress_kind::job_started, job));

    search_hooks hooks;
    hooks.should_stop = [this] {
      return stop.load(std::memory_order_relaxed);
    };
    if (options.on_progress) {
      hooks.on_improvement = [this, job](std::size_t iteration,
                                         const cgp::evaluation& eval) {
        progress_event event = base_event(progress_kind::job_improved, job);
        event.generation = iteration + 1;
        event.wmed = eval.error;
        event.area_um2 = eval.area;
        emit(event);
      };
    }
    // One generation hook serves both consumers: the stride-gated
    // job_generation events and the session-wide autosave tick counter.
    const std::size_t stride =
        options.on_progress ? options.generation_stride : 0;
    const std::size_t autosave_every =
        options.autosave_path.empty() ? 0 : options.autosave_generations;
    if (stride > 0 || autosave_every > 0) {
      hooks.on_generation = [this, job, stride, autosave_every](
                                std::size_t iteration,
                                const cgp::evaluation& best) {
        if (stride > 0 && (iteration + 1) % stride == 0) {
          progress_event event =
              base_event(progress_kind::job_generation, job);
          event.generation = iteration + 1;
          event.wmed = best.error;
          event.area_um2 = best.area;
          emit(event);
        }
        if (autosave_every > 0) {
          const std::size_t tick =
              generation_ticks.fetch_add(1, std::memory_order_relaxed) + 1;
          if (tick % autosave_every == 0) autosave();
        }
      };
    }

    std::optional<evolved_design> design =
        component.run_job(seed, job.target, job.run_index, hooks);
    if (!design) return;  // cancelled mid-run: the job stays pending

    // Publish under the state lock, notify outside it.  Reading the slot
    // afterwards without the lock is safe: each slot is written exactly
    // once, by this thread.
    const evolved_design* published = nullptr;
    {
      std::scoped_lock lock(state_mutex);
      archive.insert(pareto_point{design->wmed, design->area_um2, job.id});
      results[job.id] = std::move(*design);
      completed.fetch_add(1, std::memory_order_relaxed);
      published = &*results[job.id];
    }
    // Persist before notifying: if an observer (or the process) dies right
    // after this point, the finished job is already on disk.
    autosave();

    progress_event event = base_event(progress_kind::job_finished, job);
    event.generation = component.iterations();
    event.wmed = published->wmed;
    event.area_um2 = published->area_um2;
    emit(event);
    if (options.on_design) {
      std::scoped_lock lock(emit_mutex);
      options.on_design(*published);
    }
  }

  void run() {
    // No stop.store(false) here: a request_stop() racing run()'s start
    // must win (run nothing).  The request is consumed once, at exit.
    std::vector<sweep_job> pending;
    {
      std::scoped_lock lock(state_mutex);
      for (const sweep_job& job : jobs) {
        if (!results[job.id]) pending.push_back(job);
      }
    }

    if (!pending.empty()) {
      const std::size_t workers =
          std::min(std::max<std::size_t>(options.job_threads, 1),
                   pending.size());
      if (workers <= 1) {
        for (const sweep_job& job : pending) {
          if (stop.load(std::memory_order_relaxed)) break;
          run_one(job);
        }
      } else {
        thread_pool pool(workers);
        {
          std::scoped_lock lock(pool_mutex);
          active_pool = &pool;
        }
        for (const sweep_job& job : pending) {
          pool.submit([this, job] {
            if (!stop.load(std::memory_order_relaxed)) run_one(job);
          });
        }
        pool.wait_idle();
        {
          std::scoped_lock lock(pool_mutex);
          active_pool = nullptr;
        }
      }
    }

    // Consume the stop request so the next run() can re-run the abandoned
    // jobs; record a stop only if it actually cut work short (a request
    // landing after the final job completed does not make this run
    // "stopped").
    const bool requested = stop.exchange(false);
    last_run_stopped.store(
        requested && completed.load(std::memory_order_relaxed) != jobs.size());

    // Once-only terminal event, even if run() is called again on an
    // already-finished session.
    if (completed.load(std::memory_order_relaxed) == jobs.size() &&
        !finish_emitted.exchange(true)) {
      progress_event event;
      event.kind = progress_kind::session_finished;
      event.completed_jobs = jobs.size();
      event.total_jobs = jobs.size();
      emit(event);
    }
  }

  /// "axc-session v2": header section (magic .. seed netlist) and each job
  /// record carry a trailing `crc <8-hex>` line (CRC32 of the section's
  /// exact bytes); the footer `end <count>` doubles as a completeness
  /// sentinel.  Sections are staged through a stringstream so the CRC
  /// covers precisely what lands in the file.
  void save(std::ostream& os) const {
    std::scoped_lock lock(state_mutex);
    std::ostringstream header;
    header << kMagicV2 << "\n";
    header << "component " << component.name() << "\n";
    header << "width " << component.width() << "\n";
    header << "rng-seed " << component.rng_seed() << "\n";
    header << "iterations " << component.iterations() << "\n";
    header << "fingerprint " << component.fingerprint() << "\n";
    header << "runs-per-target " << plan.runs_per_target << "\n";
    header << "targets " << plan.targets.size();
    for (const double target : plan.targets) {
      header << " " << format_double(target);
    }
    header << "\n";
    header << "seed-netlist\n";
    circuit::write_netlist(header, seed);
    const std::string header_bytes = header.str();
    os << header_bytes << "crc " << format_crc(support::crc32(header_bytes))
       << "\n";

    std::size_t saved = 0;
    for (std::size_t id = 0; id < results.size(); ++id) {
      if (!results[id]) continue;
      const evolved_design& design = *results[id];
      std::ostringstream record;
      record << "job " << id << " target " << format_double(design.target)
             << " run " << design.run_index << " wmed "
             << format_double(design.wmed) << " area "
             << format_double(design.area_um2) << " evaluations "
             << design.evaluations << " improvements "
             << design.improvements << "\n";
      circuit::write_netlist(record, design.netlist);
      const std::string record_bytes = record.str();
      os << record_bytes << "crc "
         << format_crc(support::crc32(record_bytes)) << "\n";
      ++saved;
    }
    os << "end " << saved << "\n";
  }

  /// Atomic durable write via support::write_file_durable (temp file +
  /// flush + fsync + rename + parent-directory fsync — the last step makes
  /// the rename itself power-loss durable).  A failed save never disturbs
  /// an existing good checkpoint at `path`.  Fault injection points:
  /// `session-save-fail` (transient failure), `session-save-truncate`
  /// (torn write surviving into the file) and `session-save-dirsync-fail`
  /// (directory fsync failure after the rename).
  [[nodiscard]] bool save_to_file(const std::string& path) const {
    std::scoped_lock save_lock(save_mutex);
    std::ostringstream os;
    save(os);
    return support::write_file_durable(
        path, os.str(),
        {kFaultSaveFail, kFaultSaveTruncate, kFaultSaveDirsync});
  }

  /// Best-effort checkpoint to options.autosave_path (no-op when unset).
  /// Failures are tolerated — the next tick or job completion retries —
  /// and the atomic writer guarantees the last good file survives.
  void autosave() const {
    if (options.autosave_path.empty()) return;
    (void)save_to_file(options.autosave_path);
  }

  static constexpr std::string_view kFaultSaveFail = "session-save-fail";
  static constexpr std::string_view kFaultSaveTruncate =
      "session-save-truncate";
  static constexpr std::string_view kFaultSaveDirsync =
      "session-save-dirsync-fail";

  component_handle component;
  circuit::netlist seed;
  sweep_plan plan;
  session_config options;
  std::vector<sweep_job> jobs;
  std::vector<std::optional<evolved_design>> results;  ///< by job id
  pareto_archive archive;
  std::atomic<bool> stop{false};
  std::atomic<bool> last_run_stopped{false};
  std::atomic<bool> finish_emitted{false};
  std::atomic<std::size_t> completed{0};
  /// Session-wide generation counter driving autosave_generations ticks.
  mutable std::atomic<std::size_t> generation_ticks{0};
  /// Guards results/archive; never held while observer callbacks run.
  mutable std::mutex state_mutex;
  /// Serializes observer callbacks (on_progress/on_design).
  std::mutex emit_mutex;
  /// Serializes file writers (explicit save_file + autosaves) so two
  /// writers of the same path never interleave on the shared temp file.
  mutable std::mutex save_mutex;
  std::mutex pool_mutex;  ///< guards active_pool across run()/request_stop()
  thread_pool* active_pool{nullptr};
};

search_session::search_session(component_handle component,
                               circuit::netlist seed, sweep_plan plan,
                               session_config options)
    : impl_(std::make_unique<impl>(std::move(component), std::move(seed),
                                   std::move(plan), std::move(options))) {}

search_session::search_session(std::unique_ptr<impl> state)
    : impl_(std::move(state)) {}

search_session::search_session(search_session&&) noexcept = default;
search_session& search_session::operator=(search_session&&) noexcept =
    default;
search_session::~search_session() = default;

void search_session::run() { impl_->run(); }

void search_session::request_stop() {
  impl_->stop.store(true);
  std::scoped_lock lock(impl_->pool_mutex);
  if (impl_->active_pool != nullptr) impl_->active_pool->clear_pending();
}

bool search_session::stop_requested() const {
  return impl_->stop.load(std::memory_order_relaxed);
}

bool search_session::stopped() const {
  return impl_->last_run_stopped.load(std::memory_order_relaxed);
}

const component_handle& search_session::component() const {
  return impl_->component;
}

const circuit::netlist& search_session::seed() const { return impl_->seed; }

const sweep_plan& search_session::plan() const { return impl_->plan; }

std::size_t search_session::total_jobs() const { return impl_->jobs.size(); }

std::size_t search_session::completed_jobs() const {
  return impl_->completed.load(std::memory_order_relaxed);
}

bool search_session::finished() const {
  return completed_jobs() == total_jobs();
}

std::vector<evolved_design> search_session::designs() const {
  std::scoped_lock lock(impl_->state_mutex);
  std::vector<evolved_design> out;
  out.reserve(impl_->jobs.size());
  for (const auto& result : impl_->results) {
    if (result) out.push_back(*result);
  }
  return out;
}

std::optional<evolved_design> search_session::design(
    std::size_t job_id) const {
  std::scoped_lock lock(impl_->state_mutex);
  if (job_id >= impl_->results.size()) return std::nullopt;
  return impl_->results[job_id];
}

std::vector<pareto_point> search_session::front() const {
  std::scoped_lock lock(impl_->state_mutex);
  return impl_->archive.points();
}

void search_session::save(std::ostream& os) const { impl_->save(os); }

bool search_session::save_file(const std::string& path) const {
  return impl_->save_to_file(path);
}

std::optional<search_session> search_session::resume(
    std::istream& is, component_handle component, session_config options,
    resume_report* report) {
  if (report) *report = resume_report{};
  if (!component) return resume_error("empty component handle");

  std::string text{std::istreambuf_iterator<char>(is),
                   std::istreambuf_iterator<char>()};
  text_lines cur{text};
  const auto magic = cur.next();
  if (!magic) return resume_error("empty checkpoint");
  if (magic->line == kMagicV1) {
    if (report) report->version = 1;
    std::istringstream v1(text);
    std::string discard;
    std::getline(v1, discard);  // past the magic line
    auto session = resume_v1(v1, std::move(component), std::move(options));
    if (session && report) report->jobs_recovered = session->completed_jobs();
    return session;
  }
  if (magic->line == kMagicV2) {
    if (report) report->version = 2;
    return resume_v2(text, std::move(component), std::move(options), report);
  }
  return resume_error("bad magic line");
}

std::optional<search_session> search_session::resume_v1(
    std::istream& is, component_handle component, session_config options) {
  std::string line;

  // `read_field("key", value)`: one "key value" line, keyword-checked.
  const auto read_field = [&is, &line](const char* key, auto& value) {
    if (!std::getline(is, line)) return false;
    std::istringstream ls(line);
    std::string k;
    return static_cast<bool>(ls >> k >> value) && k == key;
  };

  std::string name;
  if (!read_field("component", name)) {
    return resume_error("missing component line");
  }
  if (name != component.name()) {
    return resume_error("component name does not match the handle");
  }
  unsigned width = 0;
  if (!read_field("width", width) || width != component.width()) {
    return resume_error("component width does not match the handle");
  }
  std::uint64_t rng_seed = 0;
  if (!read_field("rng-seed", rng_seed) ||
      rng_seed != component.rng_seed()) {
    return resume_error("rng seed does not match the handle");
  }
  std::size_t iterations = 0;
  if (!read_field("iterations", iterations) ||
      iterations != component.iterations()) {
    return resume_error("iteration budget does not match the handle");
  }
  std::uint64_t fingerprint = 0;
  if (!read_field("fingerprint", fingerprint) ||
      fingerprint != component.fingerprint()) {
    return resume_error(
        "config fingerprint does not match the handle (distribution, "
        "budget, function set or tie-break policy differ)");
  }

  sweep_plan plan;
  if (!read_field("runs-per-target", plan.runs_per_target) ||
      plan.runs_per_target > kMaxPlanEntries) {
    return resume_error("bad runs-per-target line");
  }
  {
    if (!std::getline(is, line)) return resume_error("missing targets line");
    std::istringstream ls(line);
    std::string k;
    std::size_t count = 0;
    if (!(ls >> k >> count) || k != "targets" || count > kMaxPlanEntries) {
      return resume_error("bad targets line");
    }
    plan.targets.resize(count);
    for (double& target : plan.targets) {
      if (!(ls >> target)) return resume_error("truncated targets line");
    }
  }
  if (plan.runs_per_target != 0 &&
      plan.targets.size() > kMaxPlanEntries / plan.runs_per_target) {
    return resume_error("plan expansion too large");
  }

  if (!std::getline(is, line) || line != "seed-netlist") {
    return resume_error("missing seed-netlist section");
  }
  std::optional<circuit::netlist> seed = circuit::read_netlist(is);
  if (!seed) return resume_error("malformed seed netlist");
  if (seed->num_inputs() != component.seed_inputs() ||
      seed->num_outputs() != component.seed_outputs()) {
    return resume_error("seed netlist shape does not match the component");
  }

  std::size_t completed = 0;
  if (!read_field("completed", completed)) {
    return resume_error("bad completed line");
  }

  auto state = std::make_unique<impl>(std::move(component), *std::move(seed),
                                      std::move(plan), std::move(options));
  if (completed > state->jobs.size()) {
    return resume_error("completed count exceeds the plan");
  }

  for (std::size_t j = 0; j < completed; ++j) {
    if (!std::getline(is, line)) return resume_error("truncated job record");
    std::istringstream ls(line);
    std::string k0, k1, k2, k3, k4, k5, k6;
    std::size_t id = 0, run_index = 0, evaluations = 0, improvements = 0;
    double target = 0.0, wmed = 0.0, area = 0.0;
    if (!(ls >> k0 >> id >> k1 >> target >> k2 >> run_index >> k3 >> wmed >>
          k4 >> area >> k5 >> evaluations >> k6 >> improvements) ||
        k0 != "job" || k1 != "target" || k2 != "run" || k3 != "wmed" ||
        k4 != "area" || k5 != "evaluations" || k6 != "improvements") {
      return resume_error("malformed job record");
    }
    if (id >= state->jobs.size() || state->results[id].has_value()) {
      return resume_error("job record id out of range or duplicated");
    }
    if (target != state->jobs[id].target ||
        run_index != state->jobs[id].run_index) {
      return resume_error("job record does not match the plan expansion");
    }
    std::optional<circuit::netlist> nl = circuit::read_netlist(is);
    if (!nl) return resume_error("malformed job netlist");
    if (nl->num_inputs() != state->seed.num_inputs() ||
        nl->num_outputs() != state->seed.num_outputs()) {
      return resume_error("job netlist shape does not match the component");
    }
    state->archive.insert(pareto_point{wmed, area, id});
    state->results[id] = evolved_design{*std::move(nl), wmed,       area,
                                        target,         run_index,  evaluations,
                                        improvements};
  }
  state->completed.store(completed, std::memory_order_relaxed);

  if (!std::getline(is, line) || line != "end") {
    return resume_error("missing end marker");
  }
  return search_session(std::move(state));
}

std::optional<search_session> search_session::resume_v2(
    const std::string& text, component_handle component,
    session_config options, resume_report* report) {
  text_lines cur{text};
  (void)cur.next();  // magic line, validated by the dispatcher

  // ---- Header: strict.  Without a trustworthy plan/fingerprint nothing
  // in the body is interpretable, so any damage here rejects the file.
  const auto read_field = [&cur](const char* key, auto& value) {
    const auto l = cur.next();
    if (!l) return false;
    std::istringstream ls{std::string(l->line)};
    std::string k;
    return static_cast<bool>(ls >> k >> value) && k == key;
  };

  std::string name;
  if (!read_field("component", name)) {
    return resume_error("missing component line");
  }
  if (name != component.name()) {
    return resume_error("component name does not match the handle");
  }
  unsigned width = 0;
  if (!read_field("width", width) || width != component.width()) {
    return resume_error("component width does not match the handle");
  }
  std::uint64_t rng_seed = 0;
  if (!read_field("rng-seed", rng_seed) ||
      rng_seed != component.rng_seed()) {
    return resume_error("rng seed does not match the handle");
  }
  std::size_t iterations = 0;
  if (!read_field("iterations", iterations) ||
      iterations != component.iterations()) {
    return resume_error("iteration budget does not match the handle");
  }
  std::uint64_t fingerprint = 0;
  if (!read_field("fingerprint", fingerprint) ||
      fingerprint != component.fingerprint()) {
    return resume_error(
        "config fingerprint does not match the handle (distribution, "
        "budget, function set or tie-break policy differ)");
  }

  sweep_plan plan;
  if (!read_field("runs-per-target", plan.runs_per_target) ||
      plan.runs_per_target > kMaxPlanEntries) {
    return resume_error("bad runs-per-target line");
  }
  {
    const auto l = cur.next();
    if (!l) return resume_error("missing targets line");
    std::istringstream ls{std::string(l->line)};
    std::string k;
    std::size_t count = 0;
    if (!(ls >> k >> count) || k != "targets" || count > kMaxPlanEntries) {
      return resume_error("bad targets line");
    }
    plan.targets.resize(count);
    for (double& target : plan.targets) {
      if (!(ls >> target)) return resume_error("truncated targets line");
    }
  }
  if (plan.runs_per_target != 0 &&
      plan.targets.size() > kMaxPlanEntries / plan.runs_per_target) {
    return resume_error("plan expansion too large");
  }

  {
    const auto l = cur.next();
    if (!l || l->line != "seed-netlist") {
      return resume_error("missing seed-netlist section");
    }
  }
  std::optional<circuit::netlist> seed = parse_netlist_block(cur);
  if (!seed) return resume_error("malformed seed netlist");
  if (seed->num_inputs() != component.seed_inputs() ||
      seed->num_outputs() != component.seed_outputs()) {
    return resume_error("seed netlist shape does not match the component");
  }
  {
    const auto l = cur.next();
    if (!l) return resume_error("truncated header (missing crc)");
    const auto expected = parse_crc_line(l->line);
    if (!expected) return resume_error("malformed header crc line");
    if (support::crc32(std::string_view(text).substr(0, l->start)) !=
        *expected) {
      return resume_error("header crc mismatch");
    }
  }

  auto state = std::make_unique<impl>(std::move(component), *std::move(seed),
                                      std::move(plan), std::move(options));

  // ---- Body: salvage.  Each job record is independently CRC-guarded;
  // damaged or truncated records are dropped (those jobs just re-run) and
  // scanning resyncs at the next record boundary.
  std::size_t recovered = 0;
  std::size_t dropped = 0;
  bool stray_bytes = false;
  bool footer = false;
  std::size_t footer_count = 0;

  const auto resync = [&cur] {
    while (true) {
      const std::size_t mark = cur.pos;
      const auto l = cur.next();
      if (!l) return;
      if (starts_with(l->line, "job ") || starts_with(l->line, "end")) {
        cur.pos = mark;
        return;
      }
    }
  };

  while (true) {
    const std::size_t record_start = cur.pos;
    const auto l = cur.next();
    if (!l) break;  // EOF without a footer: truncated
    if (starts_with(l->line, "end")) {
      std::istringstream ls{std::string(l->line)};
      std::string k;
      footer = static_cast<bool>(ls >> k >> footer_count) && k == "end";
      break;
    }
    if (!starts_with(l->line, "job ")) {
      stray_bytes = true;  // damage between records; skip to the next one
      resync();
      continue;
    }

    std::istringstream ls{std::string(l->line)};
    std::string k0, k1, k2, k3, k4, k5, k6;
    std::size_t id = 0, run_index = 0, evaluations = 0, improvements = 0;
    double target = 0.0, wmed = 0.0, area = 0.0;
    const bool job_line_ok =
        static_cast<bool>(ls >> k0 >> id >> k1 >> target >> k2 >>
                          run_index >> k3 >> wmed >> k4 >> area >> k5 >>
                          evaluations >> k6 >> improvements) &&
        k0 == "job" && k1 == "target" && k2 == "run" && k3 == "wmed" &&
        k4 == "area" && k5 == "evaluations" && k6 == "improvements";

    std::optional<circuit::netlist> nl;
    if (job_line_ok) nl = parse_netlist_block(cur);
    std::optional<std::uint32_t> expected;
    std::size_t crc_start = 0;
    if (nl) {
      const auto cl = cur.next();
      if (cl) {
        crc_start = cl->start;
        expected = parse_crc_line(cl->line);
      }
    }
    if (!job_line_ok || !nl || !expected ||
        support::crc32(std::string_view(text).substr(
            record_start, crc_start - record_start)) != *expected) {
      ++dropped;
      resync();
      continue;
    }

    // The CRC vouches for these bytes, so a structural mismatch now means
    // the wrong file (or a writer bug), not corruption — reject loudly.
    if (id >= state->jobs.size() || state->results[id].has_value()) {
      return resume_error("job record id out of range or duplicated");
    }
    if (target != state->jobs[id].target ||
        run_index != state->jobs[id].run_index) {
      return resume_error("job record does not match the plan expansion");
    }
    if (nl->num_inputs() != state->seed.num_inputs() ||
        nl->num_outputs() != state->seed.num_outputs()) {
      return resume_error("job netlist shape does not match the component");
    }
    state->archive.insert(pareto_point{wmed, area, id});
    state->results[id] = evolved_design{*std::move(nl), wmed,      area,
                                        target,         run_index, evaluations,
                                        improvements};
    ++recovered;
  }
  state->completed.store(recovered, std::memory_order_relaxed);

  const bool salvaged =
      dropped > 0 || stray_bytes || !footer || footer_count != recovered;
  if (salvaged) {
    std::fprintf(stderr,
                 "axc: session resume: salvaged v2 checkpoint (%zu job%s "
                 "recovered, %zu dropped%s)\n",
                 recovered, recovered == 1 ? "" : "s", dropped,
                 footer ? "" : ", footer missing");
  }
  if (report) {
    report->salvaged = salvaged;
    report->jobs_recovered = recovered;
    report->jobs_dropped = dropped;
  }
  return search_session(std::move(state));
}

std::optional<search_session> search_session::resume_file(
    const std::string& path, component_handle component,
    session_config options, resume_report* report) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return resume_error("cannot open checkpoint file");
  return resume(is, std::move(component), std::move(options), report);
}

}  // namespace axc::core
