// Fault-tolerant sharded sweep runtime (the coordinator side).
//
// A sweep_plan is embarrassingly parallel across targets, and PR 6's
// durable checkpoints make every shard's progress recoverable — so a sweep
// can be split across worker *processes* and survive worker crashes, hangs
// and truncated autosaves:
//
//   * sweep_spec is a self-contained, serializable description of one
//     sweep (component name + options + plan + seed netlist) — everything
//     a fresh process needs to rebuild the identical search ("axc-sweep-
//     spec v1" text format);
//   * split_plan() cuts the plan into contiguous target sub-plans; global
//     job ids are shard job_offset + local id, so shard results map back
//     into the full plan unambiguously;
//   * run_sweep() writes one spec + checkpoint path per shard, launches
//     one worker process (tools/axc_worker) per shard, and supervises
//     them: heartbeats from checkpoint growth, per-attempt deadlines
//     (attempt_timeout), progress deadlines (stall_timeout), SIGKILL on
//     deadline, retry with exponential backoff up to max_attempts.  A
//     relaunched worker *resumes* the shard's autosaved checkpoint, so a
//     crash only re-runs the jobs that were in flight;
//   * after supervision, every shard checkpoint (including a failed
//     shard's partial one) is salvaged through search_session::resume and
//     merged — designs by global job id, fronts through the order-
//     independent pareto_archive — so the merged result of an interrupted,
//     retried sweep is bit-identical to an uninterrupted single-process
//     run of the same spec (jobs are pure functions of (rng_seed, target,
//     run_index)).
//
// Fault injection for all of the above is deterministic: workers arm
// support/fault.h plans from the AXC_FAULT environment variable, and
// shard_env lets a test hand a poison env to one shard's *first* attempt
// only — the retry must succeed because the state on disk differs, which
// is exactly the property the kill-resume tests pin down.
//
// PR 7 closes the remaining gap: the *coordinator itself* can now die.
// run_sweep keeps an append-only journal (`<work_dir>/coordinator.journal`,
// one self-CRC'd line per record — grammar in src/core/README.md) of every
// supervision milestone: shard spawns with cumulative attempt numbers,
// shard completions/failures, store publishes, and a final `done`.  A
// re-run of the same spec + work_dir replays the journal — completed shards
// are not respawned, attempt counters continue where the dead coordinator
// left them (so shard_env first-attempt poison is never re-applied), and
// surviving shard checkpoints are resumed as usual — then merges and
// publishes a front bit-identical to an uninterrupted run.  When
// config.store_dir is set, the merge publishes into a core::result_store:
// each completed shard checkpoint under kind "session" and, once complete,
// the serialized front under kind "front", both keyed by store_key()
// (idempotent: content-addressed puts make re-publishing after a crash a
// no-op).  Coordinator crash points for the recovery suite:
// `coord-crash-after-spawn` (SIGKILLs all live workers, then _Exit(43)),
// `coord-crash-mid-merge` (_Exit(43) between shard merges) and the store's
// `store-crash-mid-index-append` (_Exit(44) between an object write and
// its index record).
//
// PR 10 takes the runtime off-box.  Workers are launched through
// support::worker_launcher command templates (core/node_pool.h: an empty
// `run` template is today's local fork/exec; `ssh {host} ...` or the CI
// fake-ssh script reach other machines), shards are *leased* to nodes from
// a core::node_pool (consecutive-failure quarantine with timed
// re-probation, per-node backoff), and a dead node's shards are reassigned
// to healthy nodes riding the same spec + checkpoint + journal + merge
// contract — a relaunch on node B resumes the checkpoint fetched from node
// A.  Remote checkpoints are pulled with the node's `fetch` template and
// CRC-verified through the axc-session-v2 salvage path before adoption, so
// a torn transfer is a detected, retried event (`node-fetch-torn`), never
// silent corruption.  Straggler shards can be speculatively duplicated
// onto another node (`speculate_after`); because every job is a pure
// function of (rng_seed, target, run_index) the two copies' results are
// bit-identical and the first CRC-valid completed checkpoint wins.  The
// journal grows `lease`/`fetch`/`release` records on the same CRC-per-line
// grammar (replayed coordinators ignore unknown tags, so the records are
// crash-safe by construction).  Node-level fault points
// (fault::points::node_launch_fail / node_dead_midrun / node_fetch_torn /
// node_heartbeat_stall) make every failure mode a deterministic ctest
// input.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "core/component_handle.h"
#include "core/node_pool.h"
#include "core/pareto.h"
#include "core/search_session.h"

namespace axc::core {

/// Everything needed to rebuild one sweep in a fresh process.  Components
/// are rebuilt by name through the component_registry with these options;
/// the cell library and SIMD level are not serialized (workers use the
/// defaults — both are bit-identical execution knobs or fingerprinted,
/// so a mismatch is caught at checkpoint resume, not silently mixed).
struct sweep_spec {
  std::string component{"mult"};
  component_options options{};
  sweep_plan plan{};
  /// Placeholder shape; callers must supply the component's real seed.
  circuit::netlist seed{1, 1};

  /// Registry lookup; empty handle when `component` is unknown.
  [[nodiscard]] component_handle make_component() const;

  /// "axc-sweep-spec v1": strict text format (doubles as %.17g, netlist in
  /// the circuit::write_netlist format, `end` terminator).  Spec files are
  /// coordinator-written scratch, so read() is strict — any damage returns
  /// nullopt.
  void write(std::ostream& os) const;
  [[nodiscard]] bool write_file(const std::string& path) const;
  [[nodiscard]] static std::optional<sweep_spec> read(std::istream& is);
  [[nodiscard]] static std::optional<sweep_spec> read_file(
      const std::string& path);

  /// Stable identity of this sweep for the result store and coordinator
  /// journal: the component fingerprint (every result-affecting knob,
  /// incl. the distribution masses bit-for-bit) FNV-folded with the plan
  /// (target bits + runs_per_target).  Two specs share a key iff they
  /// produce bit-identical sweep results.  0 when the component is
  /// unknown to the registry.
  [[nodiscard]] std::uint64_t store_key() const;
};

/// One shard of a plan: a contiguous target-major slice, plus the global
/// job id of its first job.
struct plan_shard {
  sweep_plan plan{};
  std::size_t job_offset{0};
};

/// Cuts `plan` into at most `shards` contiguous target subsets (never
/// splitting one target's repetitions across shards); at least one target
/// per shard, surplus targets distributed to the leading shards.
[[nodiscard]] std::vector<plan_shard> split_plan(const sweep_plan& plan,
                                                 std::size_t shards);

enum class shard_event_kind : std::uint8_t {
  spawned,     ///< worker process launched (attempt counts from 1)
  heartbeat,   ///< shard checkpoint grew (jobs_done advanced)
  timed_out,   ///< attempt_timeout exceeded — worker killed
  stalled,     ///< stall_timeout without checkpoint growth — worker killed
  exited,      ///< worker exited abnormally (exit_code: 128+sig if killed)
  retrying,    ///< relaunch scheduled after backoff
  completed,   ///< worker finished its shard cleanly
  failed,      ///< attempts exhausted; shard left to checkpoint salvage
  drained,     ///< should_stop() asked for a graceful drain; worker killed
  speculated,  ///< duplicate launch for a straggler shard (another node)
  fetch_torn,  ///< fetched checkpoint failed CRC validation; refetching
};

/// Supervision progress stream (the process-level analogue of
/// progress_event).  Serialized: emitted from the coordinator loop only.
struct shard_event {
  shard_event_kind kind{shard_event_kind::spawned};
  std::size_t shard{0};
  std::size_t attempt{0};
  std::size_t jobs_done{0};  ///< completed jobs visible in the checkpoint
  std::size_t jobs_total{0};  ///< jobs in this shard's plan
  int exit_code{0};           ///< exited/retrying/failed only
  std::string node{};         ///< name of the node the launch ran on
};

struct shard_runner_config {
  /// Worker processes to split the plan across (clamped to target count).
  std::size_t shards{2};
  /// Launch attempts per shard before giving up (>= 1).
  std::size_t max_attempts{3};
  /// Hard deadline per attempt; 0 = none.  Enforced by SIGKILL + retry.
  std::chrono::milliseconds attempt_timeout{0};
  /// Kill an attempt whose checkpoint shows no new completed job for this
  /// long; 0 = none.  Catches live-locked / sleeping workers that would
  /// never hit attempt_timeout sized for the whole shard.
  std::chrono::milliseconds stall_timeout{0};
  /// First relaunch delay; doubles (backoff_factor) per further attempt.
  std::chrono::milliseconds backoff{100};
  double backoff_factor{2.0};
  std::chrono::milliseconds poll_interval{20};
  /// Forwarded to workers (--autosave-generations): mid-job checkpoint
  /// cadence on top of the per-job autosave workers always run with.
  std::size_t worker_autosave_generations{0};
  /// Scratch directory for shard spec + checkpoint files (created if
  /// missing).  Checkpoints persist across run_sweep calls: re-running a
  /// killed coordinator resumes where its workers left off.
  std::string work_dir{};
  /// Path to the worker executable (tools/axc_worker).
  std::string worker_binary{};
  /// Extra "KEY=VALUE" environment entries for every worker attempt.
  std::vector<std::string> worker_env{};
  /// Per-shard extra env applied to the FIRST attempt only (index = shard).
  /// The fault-injection hook: arm AXC_FAULT for one shard's first life and
  /// the retry runs clean — recovery succeeds because the on-disk state
  /// differs, not because the fault went away by luck.
  std::vector<std::vector<std::string>> shard_env{};
  /// When non-empty, publish the merge into a core::result_store at this
  /// root: every completed shard's checkpoint bytes under kind "session"
  /// (key = format_key of that shard spec's store_key()) and — only when
  /// the merge is complete — the serialize_front() text under kind "front"
  /// (key = format_key(spec.store_key())).  Publishing is idempotent, so a
  /// crashed-and-re-run coordinator converges on the same store contents.
  std::string store_dir{};
  /// Nodes to lease shard launches to (core/node_pool.h).  Empty = one
  /// implicit local node with a slot per shard — exactly the single-box
  /// behavior this config had before multi-node dispatch existed.
  std::vector<node_config> nodes{};
  node_policy nodes_policy{};
  /// Straggler speculation: a shard whose only launch has run this long
  /// without completing gets ONE duplicate launch on another node (its own
  /// scratch checkpoint; the first CRC-valid completed checkpoint wins —
  /// harmless because both are bit-identical).  0 = off.
  std::chrono::milliseconds speculate_after{0};
  /// Let speculation losers run to completion instead of killing them when
  /// the winner lands (the byte-equality test harness knob; production
  /// wants the default false).
  bool speculation_keep_losers{false};
  /// Remote nodes only: how often to pull a checkpoint copy for heartbeat
  /// observation, and how many attempts a torn final fetch is retried.
  std::chrono::milliseconds fetch_interval{200};
  std::size_t fetch_retries{2};
  std::function<void(const shard_event&)> on_event{};
  /// Polled once per supervision tick; returning true drains the sweep:
  /// live workers are SIGKILLed (their checkpoints stay), the merge runs
  /// over whatever completed, and the result comes back `drained` (and
  /// normally incomplete — re-running the same spec + work_dir resumes).
  /// How axc_sweep's SIGTERM handler and the result server's shutdown
  /// stop a sweep without orphaning processes or losing durable state.
  std::function<bool()> should_stop{};
};

struct shard_outcome {
  std::size_t shard{0};
  std::size_t attempts{0};
  bool completed{false};  ///< a worker attempt exited 0
  bool timed_out{false};  ///< some attempt was killed on a deadline
  int last_exit_code{0};
  std::size_t jobs_total{0};
  std::size_t jobs_recovered{0};  ///< salvaged from the shard checkpoint
  std::size_t jobs_dropped{0};    ///< damaged checkpoint records skipped
  std::string node{};             ///< node whose checkpoint won the shard
  bool speculative_win{false};    ///< the winner was the duplicate launch
};

/// The merged sweep.  `complete` means every job of the plan has a design;
/// a partial merge (failed shard, damaged checkpoint) still returns every
/// salvaged design and the front over them.
struct sweep_result {
  bool complete{false};
  /// True when config.should_stop ended supervision early (graceful
  /// drain); the merge still covers every salvaged checkpoint.
  bool drained{false};
  /// Completed designs in plan order (missing jobs omitted), equal to an
  /// uninterrupted search_session::designs() when complete.
  std::vector<evolved_design> designs{};
  /// Indexed by global job id (nullopt = job lost with a failed shard).
  std::vector<std::optional<evolved_design>> by_job{};
  /// Merged Pareto front; index = global job id.
  std::vector<pareto_point> front{};
  std::vector<shard_outcome> shards{};
  /// Final node_pool health snapshot (empty for the implicit local node).
  std::vector<node_status> nodes{};
};

/// Runs `spec` sharded across supervised worker processes and merges the
/// surviving checkpoints.  Requires config.worker_binary + work_dir; on
/// platforms without process support every shard fails and the result is
/// an empty partial merge.
[[nodiscard]] sweep_result run_sweep(const sweep_spec& spec,
                                     const shard_runner_config& config);

/// Single-process reference: the same spec through one in-process
/// search_session.  run_sweep() of an interrupted, retried sweep must
/// reproduce this bit for bit — the acceptance property of the runtime.
[[nodiscard]] sweep_result run_sweep_inprocess(const sweep_spec& spec,
                                               session_config options = {});

}  // namespace axc::core
