#include "core/result_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <system_error>

#include "support/checksum.h"
#include "support/fault.h"
#include "support/io.h"

namespace axc::core {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kObjectMagic = "axc-object v1";
constexpr std::string_view kIndexMagic = "axc-store-index v1";
constexpr std::string_view kFrontMagic = "axc-front v1";
constexpr std::string_view kTableMagic = "axc-table v1";

// Fault points of the store write path (see result_store.h header comment).
constexpr std::string_view kFaultPutFail = "store-put-fail";
constexpr std::string_view kFaultPutTruncate = "store-put-truncate";
constexpr std::string_view kFaultPutDirsync = "store-put-dirsync-fail";
constexpr std::string_view kFaultIndexAppendFail = "store-index-append-fail";
constexpr std::string_view kFaultCrashMidAppend =
    "store-crash-mid-index-append";
// Deletes the object file right after put()'s existence probe — the window
// a concurrent gc (another process, stale index) wins the race in.
constexpr std::string_view kFaultPutRacingGc = "store-put-racing-gc";

[[nodiscard]] std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return std::string(buf);
}

[[nodiscard]] std::string hex8(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return std::string(buf);
}

[[nodiscard]] std::optional<std::uint64_t> parse_hex64(std::string_view s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

[[nodiscard]] bool is_token(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return false;
  }
  return true;
}

/// Content address: the hash covers kind and key as well as the payload, so
/// the same bytes stored under two names are two objects — each object file
/// is self-describing and an index rebuild recovers the full mapping.
[[nodiscard]] std::uint64_t content_hash(std::string_view kind,
                                         std::string_view key,
                                         std::string_view payload) {
  std::uint64_t h = support::fnv1a64(kind);
  h = support::fnv1a64("\n", h);
  h = support::fnv1a64(key, h);
  h = support::fnv1a64("\n", h);
  return support::fnv1a64(payload, h);
}

/// Object file = framing header (self-CRC'd) + raw payload bytes.
[[nodiscard]] std::string encode_object(const store_entry& entry,
                                        std::string_view payload) {
  std::string header;
  header += kObjectMagic;
  header += "\nkind ";
  header += entry.kind;
  header += "\nkey ";
  header += entry.key;
  header += "\nsize ";
  header += std::to_string(entry.size);
  header += "\npayload-crc ";
  header += hex8(entry.payload_crc);
  header += '\n';
  std::string out = header;
  out += "crc ";
  out += hex8(support::crc32(header));
  out += '\n';
  out.append(payload.data(), payload.size());
  return out;
}

struct decoded_object {
  store_entry entry;
  std::string payload;
};

/// Strict parse + verify of one object file's bytes.  nullopt on any framing
/// damage, CRC mismatch, or size disagreement — the callers (get/scrub/
/// rebuild) treat that uniformly as "corrupt object".
[[nodiscard]] std::optional<decoded_object> decode_object(
    std::string_view bytes) {
  // Header = first five lines; the CRC line follows; payload is the rest.
  std::size_t pos = 0;
  for (int line = 0; line < 5; ++line) {
    const std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string_view::npos) return std::nullopt;
    pos = nl + 1;
  }
  const std::string_view header = bytes.substr(0, pos);
  const std::size_t crc_nl = bytes.find('\n', pos);
  if (crc_nl == std::string_view::npos) return std::nullopt;
  const std::string_view crc_line = bytes.substr(pos, crc_nl - pos);
  if (crc_line.substr(0, 4) != "crc ") return std::nullopt;
  const auto stored_crc = parse_hex64(crc_line.substr(4));
  if (!stored_crc || *stored_crc != support::crc32(header)) {
    return std::nullopt;
  }

  // Header verified; parse its fields (line-by-line, fixed order).
  std::istringstream is{std::string(header)};
  std::string line;
  if (!std::getline(is, line) || line != kObjectMagic) return std::nullopt;
  decoded_object obj;
  if (!std::getline(is, line) || line.rfind("kind ", 0) != 0) {
    return std::nullopt;
  }
  obj.entry.kind = line.substr(5);
  if (!std::getline(is, line) || line.rfind("key ", 0) != 0) {
    return std::nullopt;
  }
  obj.entry.key = line.substr(4);
  if (!is_token(obj.entry.kind) || !is_token(obj.entry.key)) {
    return std::nullopt;
  }
  if (!std::getline(is, line) || line.rfind("size ", 0) != 0) {
    return std::nullopt;
  }
  try {
    obj.entry.size = std::stoull(line.substr(5));
  } catch (...) {
    return std::nullopt;
  }
  if (!std::getline(is, line) || line.rfind("payload-crc ", 0) != 0) {
    return std::nullopt;
  }
  const auto pcrc = parse_hex64(line.substr(12));
  if (!pcrc) return std::nullopt;
  obj.entry.payload_crc = static_cast<std::uint32_t>(*pcrc);

  const std::string_view payload = bytes.substr(crc_nl + 1);
  if (payload.size() != obj.entry.size) return std::nullopt;
  if (support::crc32(payload) != obj.entry.payload_crc) return std::nullopt;
  obj.entry.hash = content_hash(obj.entry.kind, obj.entry.key, payload);
  obj.payload.assign(payload.data(), payload.size());
  return obj;
}

[[nodiscard]] std::optional<std::string> read_file_bytes(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream os;
  os << is.rdbuf();
  if (!is) return std::nullopt;
  return std::move(os).str();
}

/// One index journal record, the same self-CRC'd line shape as the session
/// v2 format: `put <kind> <key> <hash16> <size> <payloadcrc8> crc <8hex>`,
/// CRC over everything before " crc".
[[nodiscard]] std::string encode_index_record(const store_entry& entry) {
  std::string body = "put ";
  body += entry.kind;
  body += ' ';
  body += entry.key;
  body += ' ';
  body += hex16(entry.hash);
  body += ' ';
  body += std::to_string(entry.size);
  body += ' ';
  body += hex8(entry.payload_crc);
  std::string line = body;
  line += " crc ";
  line += hex8(support::crc32(body));
  line += '\n';
  return line;
}

[[nodiscard]] std::optional<store_entry> decode_index_record(
    std::string_view line) {
  const std::size_t crc_at = line.rfind(" crc ");
  if (crc_at == std::string_view::npos) return std::nullopt;
  const auto stored = parse_hex64(line.substr(crc_at + 5));
  if (!stored || *stored != support::crc32(line.substr(0, crc_at))) {
    return std::nullopt;
  }
  std::istringstream is{std::string(line.substr(0, crc_at))};
  std::string tag, kind, key, hash_hex, crc_hex;
  std::uint64_t size = 0;
  if (!(is >> tag >> kind >> key >> hash_hex >> size >> crc_hex) ||
      tag != "put") {
    return std::nullopt;
  }
  const auto hash = parse_hex64(hash_hex);
  const auto pcrc = parse_hex64(crc_hex);
  if (!hash || !pcrc) return std::nullopt;
  store_entry e;
  e.kind = std::move(kind);
  e.key = std::move(key);
  e.hash = *hash;
  e.size = size;
  e.payload_crc = static_cast<std::uint32_t>(*pcrc);
  return e;
}

[[nodiscard]] std::string encode_index_header() {
  std::string line(kIndexMagic);
  line += " crc ";
  line += hex8(support::crc32(kIndexMagic));
  line += '\n';
  return line;
}

void upsert(std::vector<store_entry>& index, store_entry entry) {
  for (auto& e : index) {
    if (e.kind == entry.kind && e.key == entry.key) {
      e = std::move(entry);
      return;
    }
  }
  index.push_back(std::move(entry));
}

void sort_entries(std::vector<store_entry>& index) {
  std::sort(index.begin(), index.end(),
            [](const store_entry& a, const store_entry& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.key < b.key;
            });
}

}  // namespace

std::string result_store::format_key(std::uint64_t fingerprint) {
  return hex16(fingerprint);
}

std::string result_store::object_path(std::uint64_t hash) const {
  const std::string name = hex16(hash);
  return root_ + "/objects/" + name.substr(0, 2) + "/" + name + ".obj";
}

std::optional<result_store> result_store::open(std::string root,
                                               store_open_report* report) {
  store_open_report local;
  std::error_code ec;
  fs::create_directories(fs::path(root) / "objects", ec);
  if (ec) return std::nullopt;
  fs::create_directories(fs::path(root) / "quarantine", ec);
  if (ec) return std::nullopt;

  result_store store(std::move(root));
  const std::string index_path = store.root_ + "/index.axc";
  bool need_rebuild = false;
  bool index_damaged = false;
  if (const auto bytes = read_file_bytes(index_path)) {
    // Replay the journal: verified header, then one record per line with
    // salvage-on-damage (drop the record, resync at the next newline).
    std::size_t pos = 0;
    const std::size_t first_nl = bytes->find('\n');
    if (first_nl == std::string::npos ||
        bytes->substr(0, first_nl) != encode_index_header().substr(
                                          0, encode_index_header().size() - 1)) {
      need_rebuild = true;
      index_damaged = true;
    } else {
      pos = first_nl + 1;
      while (pos < bytes->size()) {
        std::size_t nl = bytes->find('\n', pos);
        const bool torn = nl == std::string::npos;
        if (torn) nl = bytes->size();
        const std::string_view line(bytes->data() + pos, nl - pos);
        if (auto entry = decode_index_record(line); entry && !torn) {
          upsert(store.index_, *std::move(entry));
        } else if (!line.empty()) {
          local.index_salvaged = true;  // damaged/torn record dropped
        }
        pos = nl + 1;
      }
    }
  } else {
    need_rebuild = true;
  }

  if (need_rebuild) {
    // The objects are the truth; reconstruct the mapping from them.  With a
    // lost journal the per-(kind, key) ordering of superseded objects is
    // gone, so the rebuild is only guaranteed faithful when each mapping
    // has a single live object — which gc() maintains and the coordinator's
    // content-addressed idempotent publishes never violate.  Sorting by
    // (kind, key, hash) makes the rebuilt index deterministic regardless of
    // directory iteration order.
    std::vector<store_entry> found;
    store.scan_objects(found);
    // A brand-new store (no index, no objects) is just initialized, not
    // "rebuilt" — only report recovery when there was something to recover.
    local.index_rebuilt = index_damaged || !found.empty();
    std::sort(found.begin(), found.end(),
              [](const store_entry& a, const store_entry& b) {
                if (a.kind != b.kind) return a.kind < b.kind;
                if (a.key != b.key) return a.key < b.key;
                return a.hash < b.hash;
              });
    for (auto& e : found) upsert(store.index_, std::move(e));
  }

  if ((need_rebuild || local.index_salvaged) && !store.rewrite_index()) {
    return std::nullopt;
  }
  local.entries = store.index_.size();
  if (report) *report = local;
  return store;
}

void result_store::scan_objects(std::vector<store_entry>& found) const {
  std::error_code ec;
  fs::recursive_directory_iterator it(fs::path(root_) / "objects", ec);
  if (ec) return;
  for (const auto& de : it) {
    if (!de.is_regular_file(ec) || de.path().extension() != ".obj") continue;
    const auto bytes = read_file_bytes(de.path().string());
    if (!bytes) continue;
    const auto obj = decode_object(*bytes);
    if (!obj) continue;  // corrupt: invisible to rebuild, scrub handles it
    // Trust only objects stored under their true content address; a
    // renamed/copied stray must not hijack a mapping during rebuild.
    if (de.path().filename().string() != hex16(obj->entry.hash) + ".obj") {
      continue;
    }
    found.push_back(obj->entry);
  }
}

bool result_store::rewrite_index() const {
  std::string text = encode_index_header();
  std::vector<store_entry> sorted = index_;
  sort_entries(sorted);
  for (const auto& e : sorted) text += encode_index_record(e);
  return support::write_file_durable(root_ + "/index.axc", text);
}

bool result_store::append_index_record(const store_entry& entry) {
  if (fault::fire(kFaultIndexAppendFail)) return false;
  const std::string path = root_ + "/index.axc";
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    if (!os) return false;
    const std::string line = encode_index_record(entry);
    os.write(line.data(), static_cast<std::streamsize>(line.size()));
    os.flush();
    if (!os) return false;
  }
  return support::fsync_file(path);
}

std::optional<std::uint64_t> result_store::put(std::string_view kind,
                                               std::string_view key,
                                               std::string_view payload) {
  if (!is_token(kind) || !is_token(key)) return std::nullopt;
  store_entry entry;
  entry.kind = std::string(kind);
  entry.key = std::string(key);
  entry.size = payload.size();
  entry.payload_crc = support::crc32(payload);
  entry.hash = content_hash(kind, key, payload);

  const std::string path = object_path(entry.hash);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return std::nullopt;
  // Identical content -> identical object file; skip the rewrite but still
  // append the index record (the previous append may be what crashed).
  bool have_object = false;
  if (const auto existing = read_file_bytes(path)) {
    const auto obj = decode_object(*existing);
    have_object = obj && obj->entry.hash == entry.hash;
  }
  // A gc in another process working from a stale index (one that predates
  // this entry) can delete the object at any instant up to the index
  // append making it referenced — including right after the probe above.
  if (fault::fire(kFaultPutRacingGc)) {
    std::error_code race_ec;
    fs::remove(path, race_ec);
  }
  if (!have_object &&
      !support::write_file_durable(
          path, encode_object(entry, payload),
          {kFaultPutFail, kFaultPutTruncate, kFaultPutDirsync})) {
    return std::nullopt;
  }
  // The window the coordinator-recovery suite replays: the object is
  // durable but its index record is not.  _Exit models SIGKILL — no
  // unwinding, no flushes.  Recovery: either the journal replay never sees
  // the record (rebuild/scan finds the object) or the re-run's idempotent
  // put lands the append.
  if (fault::fire(kFaultCrashMidAppend)) std::_Exit(44);
  if (!append_index_record(entry)) return std::nullopt;
  // Close the gc race: the record is durable, so the object is referenced
  // from here on — but a concurrent gc replaying a stale index may have
  // deleted the file between the probe above and this append.  Re-probe
  // and rewrite; an idempotent put must leave the object present.
  std::error_code exists_ec;
  if (!fs::exists(path, exists_ec) &&
      !support::write_file_durable(path, encode_object(entry, payload))) {
    return std::nullopt;
  }
  const std::uint64_t hash = entry.hash;
  upsert(index_, std::move(entry));
  return hash;
}

bool result_store::contains(std::string_view kind,
                            std::string_view key) const {
  for (const auto& e : index_) {
    if (e.kind == kind && e.key == key) return true;
  }
  return false;
}

std::optional<std::string> result_store::get(std::string_view kind,
                                             std::string_view key) const {
  const store_entry* entry = nullptr;
  for (const auto& e : index_) {
    if (e.kind == kind && e.key == key) {
      entry = &e;
      break;
    }
  }
  if (!entry) return std::nullopt;
  const std::string path = object_path(entry->hash);
  const auto bytes = read_file_bytes(path);
  if (!bytes) {
    std::cerr << "axc-store: missing object " << path << " for (" << kind
              << ", " << key << ")\n";
    return std::nullopt;
  }
  const auto obj = decode_object(*bytes);
  if (!obj || obj->entry.hash != entry->hash) {
    std::cerr << "axc-store: corrupt object " << path << " for (" << kind
              << ", " << key << ") — run scrub to quarantine\n";
    return std::nullopt;
  }
  return obj->payload;
}

std::vector<store_entry> result_store::entries(std::string_view kind) const {
  std::vector<store_entry> sorted;
  if (kind.empty()) {
    sorted = index_;
  } else {
    for (const store_entry& entry : index_) {
      if (entry.kind == kind) sorted.push_back(entry);
    }
  }
  sort_entries(sorted);
  return sorted;
}

store_scrub_report result_store::scrub() {
  store_scrub_report report;
  std::vector<std::uint64_t> bad_hashes;

  std::error_code ec;
  std::vector<fs::path> object_files;
  fs::recursive_directory_iterator it(fs::path(root_) / "objects", ec);
  if (!ec) {
    for (const auto& de : it) {
      if (de.is_regular_file(ec) && de.path().extension() == ".obj") {
        object_files.push_back(de.path());
      }
    }
  }
  std::sort(object_files.begin(), object_files.end());

  for (const auto& path : object_files) {
    ++report.objects_checked;
    const auto bytes = read_file_bytes(path.string());
    std::optional<decoded_object> obj;
    if (bytes) obj = decode_object(*bytes);
    const bool name_ok =
        obj && path.filename().string() == hex16(obj->entry.hash) + ".obj";
    if (obj && name_ok) continue;
    // Quarantine: rename aside, never delete — keep the evidence, stop
    // serving it.  A name collision in quarantine gets a numeric suffix so
    // repeated scrubs of repeated corruption never clobber prior evidence.
    fs::path dest = fs::path(root_) / "quarantine" / path.filename();
    for (int n = 1; fs::exists(dest, ec); ++n) {
      dest = fs::path(root_) / "quarantine" /
             (path.filename().string() + "." + std::to_string(n));
    }
    fs::rename(path, dest, ec);
    if (!ec) ++report.quarantined;
    if (const auto hash =
            parse_hex64(path.stem().string())) {
      bad_hashes.push_back(*hash);
    }
  }

  // Drop index entries whose object was quarantined or is simply gone.
  const std::size_t before = index_.size();
  std::erase_if(index_, [&](const store_entry& e) {
    if (std::find(bad_hashes.begin(), bad_hashes.end(), e.hash) !=
        bad_hashes.end()) {
      return true;
    }
    std::error_code exists_ec;
    return !fs::exists(object_path(e.hash), exists_ec);
  });
  report.entries_dropped = before - index_.size();

  if ((report.quarantined > 0 || report.entries_dropped > 0) &&
      !rewrite_index()) {
    std::cerr << "axc-store: scrub could not rewrite index under " << root_
              << '\n';
  }
  return report;
}

store_gc_report result_store::gc() {
  store_gc_report report;
  std::error_code ec;
  std::vector<fs::path> object_files;
  fs::recursive_directory_iterator it(fs::path(root_) / "objects", ec);
  if (!ec) {
    for (const auto& de : it) {
      if (de.is_regular_file(ec) && de.path().extension() == ".obj") {
        object_files.push_back(de.path());
      }
    }
  }
  std::sort(object_files.begin(), object_files.end());
  for (const auto& path : object_files) {
    const auto hash = parse_hex64(path.stem().string());
    const bool live =
        hash && std::any_of(index_.begin(), index_.end(),
                            [&](const store_entry& e) {
                              return e.hash == *hash;
                            });
    if (live) continue;
    const auto size = fs::file_size(path, ec);
    if (!fs::remove(path, ec) || ec) continue;
    ++report.objects_removed;
    if (size != static_cast<std::uintmax_t>(-1)) {
      report.bytes_reclaimed += size;
    }
  }
  if (report.objects_removed > 0 && !rewrite_index()) {
    std::cerr << "axc-store: gc could not rewrite index under " << root_
              << '\n';
  }
  return report;
}

std::string serialize_front(std::span<const pareto_point> front) {
  std::string out(kFrontMagic);
  out += "\npoints ";
  out += std::to_string(front.size());
  out += '\n';
  char buf[96];
  for (const pareto_point& p : front) {
    // %.17g round-trips every double bit-exactly through strtod — the same
    // guarantee the checkpoint format leans on.
    std::snprintf(buf, sizeof(buf), "%.17g %.17g %zu\n", p.x, p.y, p.index);
    out += buf;
  }
  out += "end\n";
  return out;
}

std::optional<std::vector<pareto_point>> parse_front(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string magic_a, magic_b, tag;
  if (!(is >> magic_a >> magic_b) ||
      magic_a + " " + magic_b != kFrontMagic) {
    return std::nullopt;
  }
  std::size_t count = 0;
  if (!(is >> tag >> count) || tag != "points") return std::nullopt;
  std::vector<pareto_point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pareto_point p;
    if (!(is >> p.x >> p.y >> p.index)) return std::nullopt;
    points.push_back(p);
  }
  if (!(is >> tag) || tag != "end") return std::nullopt;
  return points;
}

std::string serialize_table(unsigned width,
                            std::span<const std::int64_t> values) {
  std::string out(kTableMagic);
  out += "\nwidth ";
  out += std::to_string(width);
  out += "\nentries ";
  out += std::to_string(values.size());
  out += '\n';
  // 16 values per line keeps a w=8 table (65536 entries) around a few
  // hundred KB of grep-able text without degenerate line lengths.
  for (std::size_t i = 0; i < values.size(); ++i) {
    out += std::to_string(values[i]);
    out += (i + 1 == values.size() || (i + 1) % 16 == 0) ? '\n' : ' ';
  }
  out += "end\n";
  return out;
}

std::optional<table_payload> parse_table(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string magic_a, magic_b, tag;
  if (!(is >> magic_a >> magic_b) ||
      magic_a + " " + magic_b != kTableMagic) {
    return std::nullopt;
  }
  table_payload table;
  if (!(is >> tag >> table.width) || tag != "width") return std::nullopt;
  std::size_t count = 0;
  if (!(is >> tag >> count) || tag != "entries" || count > (1u << 26)) {
    return std::nullopt;
  }
  table.values.resize(count);
  for (std::int64_t& value : table.values) {
    if (!(is >> value)) return std::nullopt;
  }
  if (!(is >> tag) || tag != "end") return std::nullopt;
  return table;
}

}  // namespace axc::core
