// Application-level evaluation and re-ranking of design-space fronts (the
// deployment half of the method).
//
// A search_session ranks designs by the search surrogates (WMED vs area);
// the paper's headline results (Figs. 5-7, Table I) re-rank those fronts by
// what the *application* observes: MLP digit accuracy, Gaussian-filter
// PSNR, and power/PDP under the real operand workload.  app_eval makes
// that last mile a subsystem instead of bench-only code:
//
//   * app_metric — one application-level score of a compiled design.
//     Shipped implementations: quantized-NN accuracy on digits (optionally
//     after approximate-aware fine-tuning, wrapping nn::finetune),
//     Gaussian-filter PSNR (imgproc), and power/PDP/area via
//     core::make_multiplier_workload + circuit::profile_activity +
//     tech::analyze (the characterize_* flow).
//   * rerank_front() — compiles each front member once (the wide-lane
//     metrics::basic_compiled_table batch path), scores every
//     (member x metric) job on a thread_pool, and assembles the
//     application-level front (e.g. accuracy vs power).  Each job writes
//     its own slot, so results are bit-identical at any thread count.
//   * session_candidates() / checkpoint_candidates() — feed a live
//     search_session, or one or more saved session checkpoints (fronts
//     merged via pareto_archive::merge), into the re-ranking.
//
// This is the autoAx-style library -> application QoR step: the search
// works in cheap surrogates, the deployment re-ranks the survivors by the
// metrics users actually ship.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/pareto.h"
#include "core/search_session.h"
#include "dist/pmf.h"
#include "metrics/compiled_table.h"
#include "nn/finetune.h"
#include "nn/network.h"
#include "tech/cell_library.h"

namespace axc::core {

/// One design under application-level evaluation.
struct app_candidate {
  std::size_t index{0};   ///< caller payload (session job id / list position)
  std::string family{};   ///< series tag for reports ("proposed", ...)
  double target{0.0};     ///< the search target E_i (0 for fixed baselines)
  double wmed{0.0};       ///< search-level scores, when known
  double area_um2{0.0};
  circuit::netlist netlist;
};

/// One application-level score.  Implementations must be thread-safe and
/// deterministic: rerank_front() calls score() concurrently for different
/// candidates, and bit-identical results at any thread count are part of
/// the contract (asserted in tests/test_app_eval.cpp).
class app_metric {
 public:
  virtual ~app_metric() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  /// True when larger scores are better (accuracy, PSNR); false for cost
  /// metrics (power, PDP, area).
  [[nodiscard]] virtual bool higher_is_better() const = 0;
  /// Scores one candidate; `table` is its compiled characterization
  /// (compiled once per candidate, shared by all metrics).
  [[nodiscard]] virtual double score(
      const circuit::netlist& nl,
      const metrics::compiled_mult_table& table) const = 0;
  /// Stable fingerprint of every option that affects score(), or nullopt
  /// when the metric cannot assert one.  Two metrics reporting the same
  /// fingerprint must score every netlist identically — that is what lets
  /// rerank_score_cache reuse scores across rerank_front() calls; metrics
  /// returning nullopt are re-scored on every rerank, never cached.
  [[nodiscard]] virtual std::optional<std::uint64_t> fingerprint() const {
    return std::nullopt;
  }
};

// ---------------------------------------------------------------------------
// Shipped metrics
// ---------------------------------------------------------------------------

/// save_weights() blob of a trained network (what nn_accuracy_options
/// carries so every evaluation starts from an identical clone).
std::string save_network_weights(const nn::network& net);

struct nn_accuracy_options {
  /// Builds the (untrained) architecture; must match `trained_weights`.
  std::function<nn::network()> build;
  /// save_network_weights() blob of the trained float network.
  std::string trained_weights;
  /// Dataset fields are views into caller-owned storage (datasets are
  /// large; an init + tuned metric pair must not duplicate them) — the
  /// caller keeps them alive for the metric's lifetime.
  /// Calibration images for the Ristretto-style range analysis.
  std::span<const nn::tensor> calibration;
  std::span<const nn::tensor> test_x;
  std::span<const int> test_labels;
  /// When set, fine-tune on (train_x, train_labels) with the candidate's
  /// table before measuring (Table I "after finetuning").
  std::optional<nn::finetune_config> finetune{};
  std::span<const nn::tensor> train_x;
  std::span<const int> train_labels;
  std::string name{"accuracy"};
};

/// Quantized digit-classification accuracy in [0, 1], higher is better.
/// Every evaluation rebuilds the network from the trained weights, so
/// fine-tuning runs never leak state between candidates.
std::unique_ptr<app_metric> make_nn_accuracy_metric(
    nn_accuracy_options options);

/// Opaque memo shared by several PSNR metrics (see
/// gaussian_psnr_options::cache).
class filter_quality_cache;
std::shared_ptr<filter_quality_cache> make_psnr_cache();

struct gaussian_psnr_options {
  std::size_t image_count{25};
  std::size_t image_size{64};
  double noise_sigma{12.0};
  std::uint64_t seed{2026};
  bool report_min{false};  ///< report the worst image instead of the mean
  std::string name{"psnr_db"};
  /// Optional: a mean + min metric pair sharing one cache (make_psnr_cache)
  /// runs the filter sweep once per candidate and reads both fields.  Same
  /// validation semantics as power_metric_options::cache.
  std::shared_ptr<filter_quality_cache> cache{};
};

/// Mean (or min) PSNR of the approximate 3x3 Gaussian filter vs the exact
/// one, in dB; higher is better.
std::unique_ptr<app_metric> make_gaussian_psnr_metric(
    gaussian_psnr_options options = {});

/// Opaque memo shared by several power metrics (see
/// power_metric_options::cache).
class power_characterization_cache;
std::shared_ptr<power_characterization_cache> make_power_cache();

struct power_metric_options {
  /// Operand A statistics of the application (coefficients / NN weights).
  dist::pmf distribution;
  const tech::cell_library* library{&tech::cell_library::nangate45_like()};
  /// 0: characterize the bare multiplier; > 0: the full MAC unit with an
  /// accumulator of this width (Table I / Fig. 7 granularity).
  unsigned mac_acc_width{0};
  std::size_t workload_samples{4096};
  std::uint64_t workload_seed{7};
  enum class quantity : std::uint8_t { power_uw, pdp_fj, area_um2, delay_ps };
  quantity report{quantity::power_uw};
  std::string name{"power_uw"};
  /// Optional: metrics sharing one cache (make_power_cache) characterize
  /// each candidate once — concurrent sharers wait on that one run — and
  /// read different quantities from the same result, e.g. a pdp + power +
  /// area column set.  Hits are validated against the candidate netlist's
  /// contents and a fingerprint of every option except `report`/`name`, so
  /// mismatches (stale addresses after a previous rerank, metrics with
  /// different workloads) recompute instead of serving wrong figures;
  /// sharers therefore only *benefit* when their options agree.
  std::shared_ptr<power_characterization_cache> cache{};
};

/// Electrical cost under the application's operand workload; lower is
/// better.  The component spec comes from the candidate's compiled table.
std::unique_ptr<app_metric> make_power_metric(power_metric_options options);

// ---------------------------------------------------------------------------
// Re-ranking
// ---------------------------------------------------------------------------

/// Score memo reused across rerank_front() calls — the incremental
/// re-ranking lever: as a search session's archive evolves, successive
/// reranks only score the candidates the archive *kept* since the last
/// rerank (plus any new ones); unchanged (netlist, metric) pairs replay
/// their cached score bit-identically.  Entries are keyed by a hash of
/// (netlist contents, metric fingerprint, compile spec) and validated
/// against a stored copy of the netlist, so hash collisions recompute
/// instead of serving wrong figures.  Thread-safe; candidates fully served
/// from the cache skip their table compile too.
class rerank_score_cache;
std::shared_ptr<rerank_score_cache> make_rerank_cache();

struct rerank_config {
  /// Spec the candidate netlists are compiled against.
  metrics::mult_spec spec{8, false};
  /// Worker threads for the (candidate x metric) jobs; results are
  /// bit-identical at any setting.
  std::size_t threads{1};
  /// Indices into the metric list spanning the application-level front:
  /// the quality axis (maximized) and the cost axis (minimized).
  std::size_t quality_metric{0};
  std::size_t cost_metric{1};
  /// Optional: hold one cache across successive rerank_front() calls to
  /// re-score only changed/new candidates (bit-identical to a cold rerank;
  /// parity-tested in tests/test_app_eval.cpp).
  std::shared_ptr<rerank_score_cache> cache{};
};

struct reranked_design {
  app_candidate candidate;
  /// scores[m] = metric m's score of this candidate.
  std::vector<double> scores;
};

struct rerank_result {
  std::vector<std::string> metric_names;
  /// One entry per input candidate, in input order.
  std::vector<reranked_design> designs;
  /// The application-level front over (quality, cost).  Minimization form:
  /// x = quality score negated when the metric is higher-is-better, y =
  /// cost score; index = position in `designs`.
  std::vector<pareto_point> front;

  [[nodiscard]] const reranked_design& at(const pareto_point& p) const {
    return designs[p.index];
  }
};

/// Compiles each candidate once, scores all (candidate x metric) jobs on a
/// thread_pool, and assembles the quality-vs-cost front.
rerank_result rerank_front(std::vector<app_candidate> candidates,
                           std::span<const std::unique_ptr<app_metric>> metrics,
                           const rerank_config& config = {});

/// Appends `extra` onto `candidates`, re-indexing the appended members
/// onto the combined list — how drivers accumulate several families
/// (sessions, checkpoints, fixed baselines) into one rerank input without
/// hand-rolled index bookkeeping.
void append_candidates(std::vector<app_candidate>& candidates,
                       std::vector<app_candidate> extra);

/// Candidates of a live session: every completed design, or only the
/// archive front members (`front_only`).  index = session job id.
std::vector<app_candidate> session_candidates(const search_session& session,
                                              bool front_only = false,
                                              std::string family = {});

/// Restores one or more session checkpoints (search_session::resume
/// semantics — same component fingerprint required) and returns their
/// candidates re-indexed globally.  With `front_only` the per-session
/// fronts are unioned via pareto_archive::merge(), so a sweep sharded
/// across machines re-ranks as one front.  nullopt on a malformed
/// checkpoint or fingerprint mismatch.
std::optional<std::vector<app_candidate>> checkpoint_candidates(
    std::span<const std::string> paths, const component_handle& component,
    bool front_only = false, std::string family = {});

/// Stream variant of the above (one istream per checkpoint).
std::optional<std::vector<app_candidate>> checkpoint_candidates(
    std::span<std::istream* const> streams, const component_handle& component,
    bool front_only = false, std::string family = {});

}  // namespace axc::core
