#include "core/component_handle.h"

#include <algorithm>

namespace axc::core {

namespace {

template <metrics::component_spec Spec>
basic_approximation_config<Spec> config_from_options(
    Spec spec, const component_options& options) {
  basic_approximation_config<Spec> config;
  config.spec = spec;
  config.distribution = options.distribution;
  config.iterations = options.iterations;
  config.runs_per_target = options.runs_per_target;
  config.extra_columns = options.extra_columns;
  config.max_mutations = options.max_mutations;
  config.lambda = options.lambda;
  config.threads = options.threads;
  config.error_tiebreak = options.error_tiebreak;
  config.incremental = options.incremental;
  config.simd = options.simd;
  config.batch_candidates = options.batch_candidates;
  config.rng_seed = options.rng_seed;
  config.library = options.library;
  return config;
}

}  // namespace

component_registry& component_registry::instance() {
  static component_registry registry;
  return registry;
}

component_registry::component_registry() {
  factories_.emplace_back("mult", [](const component_options& options) {
    return make_component(config_from_options(
        metrics::mult_spec{options.width, options.is_signed}, options));
  });
  factories_.emplace_back("adder", [](const component_options& options) {
    return make_component(config_from_options(
        metrics::adder_spec{options.width}, options));
  });
}

void component_registry::register_component(std::string name, factory make) {
  std::scoped_lock lock(mutex_);
  const auto it = std::find_if(
      factories_.begin(), factories_.end(),
      [&name](const auto& entry) { return entry.first == name; });
  if (it != factories_.end()) {
    it->second = std::move(make);
    return;
  }
  factories_.emplace_back(std::move(name), std::move(make));
}

component_handle component_registry::make(
    const std::string& name, const component_options& options) const {
  factory found;
  {
    std::scoped_lock lock(mutex_);
    const auto it = std::find_if(
        factories_.begin(), factories_.end(),
        [&name](const auto& entry) { return entry.first == name; });
    if (it == factories_.end()) return {};
    found = it->second;
  }
  // Build outside the lock: factories run finalize_config and may be slow.
  return found(options);
}

std::vector<std::string> component_registry::names() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, make] : factories_) names.push_back(name);
  return names;
}

}  // namespace axc::core
