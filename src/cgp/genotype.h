// Cartesian Genetic Programming genotype (Miller [9], as used by the paper).
//
// A candidate circuit is an r x c grid of two-input programmable nodes plus
// no output genes; every node is encoded by three integers (in0, in1,
// function index), giving the paper's S = r*c*(na+1) + no genes.  Node
// inputs may reference primary inputs or nodes up to `levels_back` columns
// to the left, so decoded circuits are combinational by construction.
// Redundant (inactive) nodes are part of the encoding — they are the raw
// material of CGP's neutral drift.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "circuit/gate.h"
#include "circuit/netlist.h"
#include "support/rng.h"

namespace axc::cgp {

struct parameters {
  std::size_t num_inputs{0};
  std::size_t num_outputs{0};
  std::size_t columns{0};
  std::size_t rows{1};
  /// How many columns to the left a node may read from; `columns` means
  /// "any previous column" (the paper's setting for r = 1).
  std::size_t levels_back{0};
  std::vector<circuit::gate_fn> function_set;
  /// h: a mutation changes up to this many genes.
  unsigned max_mutations{5};
  /// lambda of the (1 + lambda) evolution strategy.
  std::size_t lambda{4};

  [[nodiscard]] std::size_t node_count() const { return rows * columns; }
  /// S = r*c*(na+1) + no.
  [[nodiscard]] std::size_t gene_count() const {
    return node_count() * 3 + num_outputs;
  }
  /// Validates consistency; returns an error description or empty string.
  [[nodiscard]] std::string validate() const;

  friend bool operator==(const parameters&, const parameters&) = default;
};

class genotype {
 public:
  /// All-zero genotype (every node computes function_set[0] over input 0).
  explicit genotype(parameters params);

  /// Uniformly random genotype.
  static genotype random(parameters params, rng& gen);

  /// Seeds the genotype with an existing netlist (requires rows == 1 and
  /// netlist gates <= columns).  Gate k becomes node k; the remaining
  /// columns are filled with random (initially inactive) nodes, giving the
  /// search spare material without changing the seeded function.
  static genotype from_netlist(parameters params, const circuit::netlist& nl,
                               rng& gen);

  /// Point mutation: picks 1..h genes uniformly and re-randomizes each
  /// within its legal range.  Always produces a valid genotype.
  void mutate(rng& gen);

  /// As mutate(), additionally appending each mutated gene's flat index to
  /// `dirty` (gene 3k+{0,1,2} = node k's in0/in1/fn gene; node_count()*3 + o
  /// = output gene o).  Consumes the RNG identically to mutate(), so for a
  /// fixed seed both overloads produce the same genotype.  Indices may
  /// repeat, and a re-randomized gene may land on its previous value —
  /// consumers of the incremental evaluation path filter for effective
  /// change themselves.
  void mutate(rng& gen, std::vector<std::uint32_t>& dirty);

  /// Copies the genes named by `genes` (flat indices in the encoding mutate
  /// records) from `src`, which must share this genotype's parameters.  The
  /// O(dirty) child-resync primitive of the (1+lambda) inner loop: a child
  /// known to differ from `src` in at most those genes becomes
  /// gene-identical to src without the full-genotype copy (which measures
  /// as a sizeable slice of a whole incremental generation).  Indices may
  /// repeat; out-of-range indices are not allowed.
  void copy_genes_from(const genotype& src,
                       std::span<const std::uint32_t> genes);

  /// The marking phase of decode_cone(): flags[k] = 1 iff node k is in the
  /// transitive fan-in cone of the output genes (honouring functions that
  /// ignore an operand).  Resizes `flags` to node_count(); returns the
  /// number of active nodes.  This is the genotype-native cone membership
  /// primitive of the incremental evaluation path — no netlist involved.
  std::size_t mark_cone(std::vector<std::uint8_t>& flags) const;

  /// Decodes to the netlist IR (includes inactive nodes; netlist-level
  /// analyses mask them out).
  [[nodiscard]] circuit::netlist decode() const;

  /// Cone-restricted decode: emits only the nodes in the transitive fan-in
  /// cone of the output genes (honouring functions that ignore an operand),
  /// with addresses renumbered.  Produces exactly decode().compacted()
  /// without materializing the inactive nodes — the evaluation hot path of
  /// the CGP search, where most genes are inactive.
  [[nodiscard]] circuit::netlist decode_cone() const;

  [[nodiscard]] const parameters& params() const { return params_; }

  struct node_genes {
    std::uint32_t in0, in1, fn;
    friend bool operator==(const node_genes&, const node_genes&) = default;
  };
  [[nodiscard]] const std::vector<node_genes>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<std::uint32_t>& output_genes() const {
    return outputs_;
  }

  /// Number of genes differing from `other` (same parameters required).
  [[nodiscard]] std::size_t distance(const genotype& other) const;

  friend bool operator==(const genotype&, const genotype&) = default;

 private:
  /// First legal source address for a node in `column` (always 0) and one
  /// past the last: sources are primary inputs plus nodes in columns
  /// [column - levels_back, column).
  [[nodiscard]] std::uint32_t random_source(std::size_t column, rng& gen) const;

  /// Shared body of both mutate() overloads; `dirty` may be null.
  void mutate_impl(rng& gen, std::vector<std::uint32_t>* dirty);

  parameters params_;
  std::vector<node_genes> nodes_;
  std::vector<std::uint32_t> outputs_;
};

}  // namespace axc::cgp
