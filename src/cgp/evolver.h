// (1 + lambda) evolution strategy over CGP genotypes (Sec. III-C).
//
// Each generation creates lambda mutants of the parent; the best mutant
// replaces the parent if it is *not worse* — accepting equal fitness is
// CGP's neutral drift and is essential for escaping plateaus.  Fitness
// follows the paper's Eq. 1: a candidate is feasible when its error is
// within the target threshold, feasible candidates are ranked by area, and
// infeasible ones rank below every feasible candidate (ranked among
// themselves by error so a search seeded out of the feasible region can
// climb back in).
#pragma once

#include <cstdint>
#include <functional>

#include "cgp/genotype.h"
#include "circuit/netlist.h"
#include "support/rng.h"

namespace axc::cgp {

/// Outcome of evaluating one candidate.
struct evaluation {
  double error{0.0};  ///< e.g. WMED; only ordering matters when infeasible
  double area{0.0};   ///< minimization objective when feasible
  bool feasible{false};
};

/// Strict-weak "a is strictly better than b" per Eq. 1 (+ error tie-break).
[[nodiscard]] bool better(const evaluation& a, const evaluation& b);

/// "a can replace b" — better or equal (neutral drift acceptance).
[[nodiscard]] bool not_worse(const evaluation& a, const evaluation& b);

class evolver {
 public:
  using evaluate_fn = std::function<evaluation(const circuit::netlist&)>;
  /// Called whenever the parent strictly improves.
  using progress_fn =
      std::function<void(std::size_t iteration, const evaluation&)>;

  struct options {
    std::size_t iterations{10000};
    bool neutral_drift{true};
    /// Among feasible candidates of equal area, prefer lower error.  Eq. 1
    /// leaves equal-fitness ordering open; biasing the neutral drift toward
    /// low error keeps the error budget spent on many small deviations
    /// instead of a few catastrophic ones, which matters at short search
    /// budgets (see DESIGN.md ablations).
    bool error_tiebreak{false};
    progress_fn on_improvement{};
  };

  struct run_result {
    genotype best;
    evaluation best_eval;
    std::size_t iterations{0};
    std::size_t evaluations{0};
    std::size_t improvements{0};
    std::size_t neutral_moves{0};
  };

  /// Runs the (1 + lambda) ES from `seed`; lambda and mutation strength
  /// come from the genotype's parameters.
  static run_result run(const genotype& seed, const evaluate_fn& evaluate,
                        const options& opts, rng& gen);
};

}  // namespace axc::cgp
