// (1 + lambda) evolution strategy over CGP genotypes (Sec. III-C).
//
// Each generation creates lambda mutants of the parent; the best mutant
// replaces the parent if it is *not worse* — accepting equal fitness is
// CGP's neutral drift and is essential for escaping plateaus.  Fitness
// follows the paper's Eq. 1: a candidate is feasible when its error is
// within the target threshold, feasible candidates are ranked by area, and
// infeasible ones rank below every feasible candidate (ranked among
// themselves by error so a search seeded out of the feasible region can
// climb back in).
#pragma once

#include <cstdint>
#include <functional>

#include "cgp/genotype.h"
#include "circuit/netlist.h"
#include "support/rng.h"

namespace axc::cgp {

/// Outcome of evaluating one candidate.
struct evaluation {
  double error{0.0};  ///< e.g. WMED; only ordering matters when infeasible
  double area{0.0};   ///< minimization objective when feasible
  bool feasible{false};
};

/// Strict-weak "a is strictly better than b" per Eq. 1 (+ error tie-break).
[[nodiscard]] bool better(const evaluation& a, const evaluation& b);

/// "a can replace b" — better or equal (neutral drift acceptance).
[[nodiscard]] bool not_worse(const evaluation& a, const evaluation& b);

class evolver {
 public:
  using evaluate_fn = std::function<evaluation(const circuit::netlist&)>;
  /// Creates one evaluator instance per worker thread.  Evaluators commonly
  /// carry mutable scratch state (e.g. metrics::wmed_evaluator), so the
  /// parallel evolver never shares one across threads.
  using evaluator_factory = std::function<evaluate_fn()>;
  /// Called whenever the parent strictly improves.
  using progress_fn =
      std::function<void(std::size_t iteration, const evaluation&)>;

  struct options {
    std::size_t iterations{10000};
    bool neutral_drift{true};
    /// Among feasible candidates of equal area, prefer lower error.  Eq. 1
    /// leaves equal-fitness ordering open; biasing the neutral drift toward
    /// low error keeps the error budget spent on many small deviations
    /// instead of a few catastrophic ones, which matters at short search
    /// budgets (see DESIGN.md ablations).
    bool error_tiebreak{false};
    progress_fn on_improvement{};
  };

  struct run_result {
    genotype best;
    evaluation best_eval;
    std::size_t iterations{0};
    std::size_t evaluations{0};
    std::size_t improvements{0};
    std::size_t neutral_moves{0};
  };

  /// Runs the (1 + lambda) ES from `seed`; lambda and mutation strength
  /// come from the genotype's parameters.  Candidates are decoded with
  /// genotype::decode_cone(), so evaluators only ever see the active cone
  /// (function-identical to the full decode; area metrics that mask
  /// inactive gates are unaffected).
  static run_result run(const genotype& seed, const evaluate_fn& evaluate,
                        const options& opts, rng& gen);

  /// Parallel (1 + lambda): each generation's mutants are decoded and
  /// evaluated across `threads` workers (capped by lambda), each offspring
  /// slot owning its own evaluator from `factory`.  Mutation draws happen
  /// serially on `gen` and the offspring reduction scans in mutation order,
  /// so for a fixed seed and deterministic evaluators the result is
  /// bit-identical to the serial run().
  static run_result run_parallel(const genotype& seed,
                                 const evaluator_factory& factory,
                                 const options& opts, std::size_t threads,
                                 rng& gen);
};

}  // namespace axc::cgp
