// (1 + lambda) evolution strategy over CGP genotypes (Sec. III-C).
//
// Each generation creates lambda mutants of the parent; the best mutant
// replaces the parent if it is *not worse* — accepting equal fitness is
// CGP's neutral drift and is essential for escaping plateaus.  Fitness
// follows the paper's Eq. 1: a candidate is feasible when its error is
// within the target threshold, feasible candidates are ranked by area, and
// infeasible ones rank below every feasible candidate (ranked among
// themselves by error so a search seeded out of the feasible region can
// climb back in).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "cgp/genotype.h"
#include "circuit/netlist.h"
#include "support/rng.h"

namespace axc::cgp {

/// Outcome of evaluating one candidate.
struct evaluation {
  double error{0.0};  ///< e.g. WMED; only ordering matters when infeasible
  double area{0.0};   ///< minimization objective when feasible
  bool feasible{false};
};

/// Strict-weak "a is strictly better than b" per Eq. 1 (+ error tie-break).
[[nodiscard]] bool better(const evaluation& a, const evaluation& b);

/// "a can replace b" — better or equal (neutral drift acceptance).
[[nodiscard]] bool not_worse(const evaluation& a, const evaluation& b);

/// Genotype-native incremental evaluation contract (see cone_program): the
/// evolver hands the evaluator the parent genotype and each mutant's dirty
/// gene list instead of a materialized netlist, so the evaluator can keep
/// the parent's compiled sim_program/cone schedule across the lambda
/// mutants of a generation and patch rather than recompile.
///
/// Contract: evaluate_child(parent, child, dirty) must return exactly what
/// evaluate_and_bind(child) would — the incremental path is a pure
/// throughput optimization, bit-identical to full recompilation.
class incremental_evaluator {
 public:
  virtual ~incremental_evaluator() = default;

  /// Compiles `parent`'s cone schedule and fully evaluates it; `parent`
  /// becomes the bound base for evaluate_child().
  virtual evaluation evaluate_and_bind(const genotype& parent) = 0;

  /// Rebinds to a new parent whose evaluation is already known (an accepted
  /// child) — compile only, no re-evaluation.
  virtual void rebind(const genotype& parent, const evaluation& eval) = 0;

  /// Evaluates a mutant of the bound parent.  `dirty` lists the flat gene
  /// indices touched by mutation (genotype::mutate(rng&, dirty)); the
  /// binding is left undisturbed.
  virtual evaluation evaluate_child(const genotype& parent,
                                    const genotype& child,
                                    std::span<const std::uint32_t> dirty) = 0;

  /// Evaluates children [begin, end) of one generation, writing
  /// out[k - begin] for child k.  Contract: every slot must hold exactly
  /// what evaluate_child() would return for that child — the batch form
  /// exists so evaluators can amortize shared per-generation work (e.g.
  /// one multi-candidate sweep over all mutants, see
  /// core::incremental_wmed).  The default forwards to evaluate_child()
  /// one by one.
  virtual void evaluate_children(
      const genotype& parent, const std::vector<genotype>& children,
      const std::vector<std::vector<std::uint32_t>>& dirty, std::size_t begin,
      std::size_t end, evaluation* out);
};

class evolver {
 public:
  using evaluate_fn = std::function<evaluation(const circuit::netlist&)>;
  /// Creates one evaluator instance per worker thread.  Evaluators commonly
  /// carry mutable scratch state (e.g. metrics::wmed_evaluator), so the
  /// parallel evolver never shares one across threads.
  using evaluator_factory = std::function<evaluate_fn()>;
  /// Called whenever the parent strictly improves.
  using progress_fn =
      std::function<void(std::size_t iteration, const evaluation&)>;
  /// Called after every generation with the parent's (best-so-far) score —
  /// same shape as progress_fn, distinct name for call-site clarity.
  using generation_fn = progress_fn;
  /// Cooperative cancellation: polled once per generation, before mutating.
  using stop_fn = std::function<bool()>;

  struct options {
    std::size_t iterations{10000};
    bool neutral_drift{true};
    /// Among feasible candidates of equal area, prefer lower error.  Eq. 1
    /// leaves equal-fitness ordering open; biasing the neutral drift toward
    /// low error keeps the error budget spent on many small deviations
    /// instead of a few catastrophic ones, which matters at short search
    /// budgets (see DESIGN.md ablations).
    bool error_tiebreak{false};
    /// run_incremental(): score each generation's lambda mutants through
    /// the evaluator's batch hook (evaluate_children) instead of one
    /// evaluate_child() call per mutant.  Pure execution knob —
    /// bit-identical results either way — so it is excluded from
    /// checkpoint fingerprints like the SIMD level.
    bool batch_candidates{true};
    progress_fn on_improvement{};
    generation_fn on_generation{};
    /// Returning true ends the run before the next generation's mutation
    /// draws; the best-so-far result is returned with `stopped` set.  A
    /// stopped run consumed a prefix of the full run's RNG stream, so
    /// restarting the search from scratch (not from the stopped parent) is
    /// what reproduces the uninterrupted result.
    stop_fn should_stop{};
  };

  struct run_result {
    genotype best;
    evaluation best_eval;
    std::size_t iterations{0};
    std::size_t evaluations{0};
    std::size_t improvements{0};
    std::size_t neutral_moves{0};
    bool stopped{false};  ///< options::should_stop ended the run early
  };

  /// Runs the (1 + lambda) ES from `seed`; lambda and mutation strength
  /// come from the genotype's parameters.  Candidates are decoded with
  /// genotype::decode_cone(), so evaluators only ever see the active cone
  /// (function-identical to the full decode; area metrics that mask
  /// inactive gates are unaffected).
  static run_result run(const genotype& seed, const evaluate_fn& evaluate,
                        const options& opts, rng& gen);

  /// Parallel (1 + lambda): each generation's mutants are decoded and
  /// evaluated across `threads` workers (capped by lambda), each offspring
  /// slot owning its own evaluator from `factory`.  Mutation draws happen
  /// serially on `gen` and the offspring reduction scans in mutation order,
  /// so for a fixed seed and deterministic evaluators the result is
  /// bit-identical to the serial run().
  static run_result run_parallel(const genotype& seed,
                                 const evaluator_factory& factory,
                                 const options& opts, std::size_t threads,
                                 rng& gen);

  using incremental_factory =
      std::function<std::unique_ptr<incremental_evaluator>()>;

  /// (1 + lambda) over the genotype-native incremental pipeline: mutants
  /// are never decoded to netlists; each evaluator keeps the parent's
  /// compiled schedule and receives (parent, child, dirty genes).  With
  /// threads > 1 every offspring slot owns one evaluator (rebinding to a
  /// new parent lazily on first use), with threads == 1 a single evaluator
  /// serves all slots; both orderings reproduce the same result bit for
  /// bit, and — given a conforming evaluator — the same result as run()
  /// over full per-mutant recompilation.
  static run_result run_incremental(const genotype& seed,
                                    const incremental_factory& factory,
                                    const options& opts, std::size_t threads,
                                    rng& gen);
};

}  // namespace axc::cgp
