#include "cgp/annealer.h"

#include <cmath>
#include <utility>

#include "support/assert.h"

namespace axc::cgp {

double annealer::cost(const evaluation& e, const options& opts) {
  if (e.feasible) return e.area;
  return opts.infeasible_penalty * (1.0 + e.error);
}

annealer::run_result annealer::run(const genotype& seed,
                                   const evolver::evaluate_fn& evaluate,
                                   const options& opts, rng& gen) {
  AXC_EXPECTS(evaluate != nullptr);
  AXC_EXPECTS(opts.iterations > 0);
  AXC_EXPECTS(opts.initial_temperature_fraction > 0.0);
  AXC_EXPECTS(opts.final_temperature_fraction > 0.0);
  AXC_EXPECTS(opts.final_temperature_fraction <=
              opts.initial_temperature_fraction);

  genotype current = seed;
  evaluation current_eval = evaluate(current.decode());
  run_result result{seed, current_eval, 0, 1, 0, 0};

  const double seed_cost = cost(current_eval, opts);
  const double t0 =
      opts.initial_temperature_fraction * (seed_cost > 0 ? seed_cost : 1.0);
  const double t1 = t0 * (opts.final_temperature_fraction /
                          opts.initial_temperature_fraction);
  const double decay =
      std::pow(t1 / t0, 1.0 / static_cast<double>(opts.iterations));

  double temperature = t0;
  for (std::size_t iter = 0; iter < opts.iterations; ++iter) {
    genotype candidate = current;
    candidate.mutate(gen);
    const evaluation cand_eval = evaluate(candidate.decode());
    ++result.evaluations;

    const double delta = cost(cand_eval, opts) - cost(current_eval, opts);
    bool accept = delta <= 0.0;
    if (!accept) {
      accept = gen.uniform01() < std::exp(-delta / temperature);
      if (accept) ++result.uphill_accepted;
    }
    if (accept) {
      current = std::move(candidate);
      current_eval = cand_eval;
      ++result.accepted;
      if (better(current_eval, result.best_eval)) {
        result.best = current;
        result.best_eval = current_eval;
      }
    }
    temperature *= decay;
    ++result.iterations;
  }
  return result;
}

}  // namespace axc::cgp
