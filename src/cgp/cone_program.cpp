#include "cgp/cone_program.h"

#include "circuit/gate.h"
#include "support/assert.h"

namespace axc::cgp {

void cone_program::emit(const genotype& g,
                        const std::vector<std::uint8_t>& flags) {
  const parameters& p = g.params();
  const std::size_t ni = p.num_inputs;

  program_.reset(ni, p.num_outputs, ni + p.node_count());
  fns_.clear();
  step_of_node_.assign(p.node_count(), kNoStep);

  const std::vector<genotype::node_genes>& nodes = g.nodes();
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    if (!flags[k]) continue;
    const circuit::gate_fn fn = p.function_set[nodes[k].fn];
    step_of_node_[k] = static_cast<std::uint32_t>(fns_.size());
    // Operand genes are slot indices verbatim: the slot space is the CGP
    // address space.  Ignored operands may land on unwritten slots, which
    // run() never reads.
    program_.push_step(fn, nodes[k].in0, nodes[k].in1,
                       static_cast<std::uint32_t>(ni + k));
    fns_.push_back(fn);
  }
  for (std::size_t o = 0; o < g.output_genes().size(); ++o) {
    program_.set_output_slot(o, g.output_genes()[o]);
  }
}

void cone_program::bind(const genotype& parent) {
  parent.mark_cone(active_);
  emit(parent, active_);
  step_journal_.clear();
  output_journal_.clear();
  state_ = state::synced;
}

cone_program::delta cone_program::apply(const genotype& parent,
                                        const genotype& child,
                                        std::span<const std::uint32_t> dirty) {
  AXC_EXPECTS(state_ != state::patched);
  const parameters& p = parent.params();
  const std::size_t node_gene_count = p.node_count() * 3;
  const std::vector<circuit::gate_fn>& fs = p.function_set;

  // Pass 1 — classify the mutation against the bound parent.  A gene is
  // *effective* when its value actually changed and the phenotype can see
  // it (active node or output gene); it is *edge-changing* when it alters
  // the dependence-edge structure the cone is computed from.
  bool effective = false;
  bool edges_changed = false;
  for (const std::uint32_t idx : dirty) {
    if (idx >= node_gene_count) {
      const std::size_t o = idx - node_gene_count;
      if (child.output_genes()[o] == parent.output_genes()[o]) continue;
      effective = true;
      edges_changed = true;  // output seeds moved: membership may shift
      continue;
    }
    const std::size_t k = idx / 3;
    const genotype::node_genes& pn = parent.nodes()[k];
    const genotype::node_genes& cn = child.nodes()[k];
    if (pn == cn || !active_[k]) continue;
    const circuit::gate_fn cf = fs[cn.fn];
    const bool in0_read = circuit::depends_on_a(cf);
    const bool in1_read = circuit::depends_on_b(cf);
    const bool in0_rewired = in0_read && pn.in0 != cn.in0;
    const bool in1_rewired = in1_read && pn.in1 != cn.in1;
    if (pn.fn == cn.fn && !in0_rewired && !in1_rewired) {
      continue;  // only ignored operands rewired: phenotype unchanged
    }
    effective = true;
    const circuit::gate_fn pf = fs[pn.fn];
    if (circuit::depends_on_a(pf) != in0_read ||
        circuit::depends_on_b(pf) != in1_read) {
      edges_changed = true;  // dependence pattern itself changed
    } else if (in0_rewired || in1_rewired) {
      edges_changed = true;  // a read operand was rewired
    }
    // Otherwise: a fn swap with identical dependence — provably no edge
    // change, membership cannot move.
  }
  if (!effective) return delta::identical;

  // Delta cone walk where edges moved: recompute membership over the genes
  // (no netlist) and compare with the parent's flags.
  bool membership_same = true;
  if (edges_changed) {
    child.mark_cone(scratch_flags_);
    membership_same = scratch_flags_ == active_;
  }

  if (membership_same && state_ == state::synced) {
    // Pass 2 — patch the touched steps in place, journaling previous wiring
    // for release_child().
    for (const std::uint32_t idx : dirty) {
      if (idx >= node_gene_count) {
        const std::size_t o = idx - node_gene_count;
        const std::uint32_t slot = child.output_genes()[o];
        if (slot == parent.output_genes()[o]) continue;
        output_journal_.push_back(
            {static_cast<std::uint32_t>(o), program_.output_slot(o)});
        program_.patch_output(o, slot);
        continue;
      }
      const std::size_t k = idx / 3;
      const genotype::node_genes& cn = child.nodes()[k];
      if (parent.nodes()[k] == cn || !active_[k]) continue;
      const std::uint32_t s = step_of_node_[k];
      step_journal_.push_back({s, program_.step_at(s)});
      const circuit::gate_fn cf = fs[cn.fn];
      program_.patch_step(s, cf, cn.in0, cn.in1);
      fns_[s] = cf;
    }
    state_ = state::patched;
    return delta::patched;
  }

  // Membership moved (steps would need splicing — refilling from the genes
  // costs the same and never renumbers slots), or the schedule was already
  // stale from a recompiled sibling: compile the child outright.  The
  // parent's active_ flags are left untouched, so classification of the
  // next sibling stays valid.
  emit(child, membership_same ? active_ : scratch_flags_);
  state_ = state::stale;
  return delta::recompiled;
}

void cone_program::release_child(const genotype& parent) {
  switch (state_) {
    case state::synced:
      return;  // identical apply() — nothing to undo
    case state::patched:
      // Reverse replay restores the parent wiring even when one step was
      // journaled twice (duplicate dirty genes).
      for (std::size_t i = step_journal_.size(); i-- > 0;) {
        const step_patch& sp = step_journal_[i];
        program_.patch_step(sp.step, sp.old_ref.fn, sp.old_ref.in0,
                            sp.old_ref.in1);
        fns_[sp.step] = sp.old_ref.fn;
      }
      for (std::size_t i = output_journal_.size(); i-- > 0;) {
        program_.patch_output(output_journal_[i].output,
                              output_journal_[i].old_slot);
      }
      step_journal_.clear();
      output_journal_.clear();
      state_ = state::synced;
      return;
    case state::stale:
      // Lazy: leave the recompiled child in place.  The next effective
      // mutant compiles from its own genes anyway; only an explicit bind()
      // (parent acceptance) resynchronizes.
      (void)parent;
      return;
  }
}

}  // namespace axc::cgp
