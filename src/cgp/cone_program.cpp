#include "cgp/cone_program.h"

#include <algorithm>

#include "circuit/gate.h"
#include "support/assert.h"

namespace axc::cgp {

namespace {

bool contains(const std::vector<std::uint32_t>& list, std::uint32_t v) {
  return std::find(list.begin(), list.end(), v) != list.end();
}

}  // namespace

void cone_program::write_step(const genotype& g, std::size_t k) {
  const parameters& p = g.params();
  const genotype::node_genes& n = g.nodes()[k];
  // Operand genes are slot indices verbatim: the slot space is the CGP
  // address space.  Ignored operands may land on unwritten slots, which
  // the executors never read.
  program_.set_table_step(
      k, p.function_set[n.fn], n.in0, n.in1,
      static_cast<std::uint32_t>(p.num_inputs + k));
}

void cone_program::bind(const genotype& parent) {
  const parameters& p = parent.params();
  const std::uint32_t ni = static_cast<std::uint32_t>(p.num_inputs);
  program_.reset_table(ni, p.num_outputs, ni + p.node_count(),
                       p.node_count());
  for (std::size_t k = 0; k < p.node_count(); ++k) write_step(parent, k);
  for (std::size_t o = 0; o < parent.output_genes().size(); ++o) {
    program_.set_output_slot(o, parent.output_genes()[o]);
  }
  parent.mark_cone(active_);
  program_.set_active_from_flags(active_.data(), active_.size());

  // Reference counts: read-edges from active nodes + output seeds.  The
  // cone rule makes refcnt > 0 equivalent to membership, which is what
  // lets apply() screen membership changes in O(dirty).
  refcnt_.assign(p.node_count(), 0);
  for (std::size_t k = 0; k < p.node_count(); ++k) {
    if (!active_[k]) continue;
    const genotype::node_genes& n = parent.nodes()[k];
    const circuit::gate_fn fn = p.function_set[n.fn];
    if (circuit::depends_on_a(fn) && n.in0 >= ni) ++refcnt_[n.in0 - ni];
    if (circuit::depends_on_b(fn) && n.in1 >= ni) ++refcnt_[n.in1 - ni];
  }
  for (const std::uint32_t out : parent.output_genes()) {
    if (out >= ni) ++refcnt_[out - ni];
  }

  ref_journal_.clear();
  child_dirty_.clear();
  applied_child_ = nullptr;
  indices_stale_ = false;
  membership_deferred_ = false;
  fns_valid_ = false;
}

bool cone_program::classify(const genotype& parent, const genotype& child,
                            std::span<const std::uint32_t> dirty,
                            bool& activation, bool& deactivation) {
  const parameters& p = parent.params();
  const std::size_t node_gene_count = p.node_count() * 3;
  const std::uint32_t ni = static_cast<std::uint32_t>(p.num_inputs);
  const std::vector<circuit::gate_fn>& fs = p.function_set;

  // Classify the mutation against the bound parent and fold its
  // dependence-edge deltas into the reference counts.  A gene is
  // *effective* when its value actually changed and the phenotype can see
  // it (active node or output gene); only effective changes touch edges,
  // so an identical verdict leaves the counts untouched.
  bool effective = false;
  activation = false;    // some node gained its first reference
  deactivation = false;  // some node lost its last reference
  ref_journal_.clear();
  seen_nodes_.clear();
  seen_outputs_.clear();

  const auto bump = [&](std::uint32_t addr, std::int32_t d) {
    if (addr < ni) return;  // edges into primary inputs are uncounted
    const std::uint32_t t = addr - ni;
    ref_journal_.emplace_back(t, d);
    if (d > 0) {
      if (refcnt_[t]++ == 0) activation = true;
    } else {
      if (--refcnt_[t] == 0) deactivation = true;
    }
  };

  for (const std::uint32_t idx : dirty) {
    if (idx >= node_gene_count) {
      const std::uint32_t o = static_cast<std::uint32_t>(idx - node_gene_count);
      if (child.output_genes()[o] == parent.output_genes()[o]) continue;
      if (contains(seen_outputs_, o)) continue;
      seen_outputs_.push_back(o);
      effective = true;
      bump(parent.output_genes()[o], -1);  // output seeds moved
      bump(child.output_genes()[o], +1);
      continue;
    }
    const std::uint32_t k = idx / 3;
    const genotype::node_genes& pn = parent.nodes()[k];
    const genotype::node_genes& cn = child.nodes()[k];
    if (pn == cn || !active_[k]) continue;
    if (contains(seen_nodes_, k)) continue;
    const circuit::gate_fn cf = fs[cn.fn];
    const bool in0_read = circuit::depends_on_a(cf);
    const bool in1_read = circuit::depends_on_b(cf);
    const bool in0_rewired = in0_read && pn.in0 != cn.in0;
    const bool in1_rewired = in1_read && pn.in1 != cn.in1;
    if (pn.fn == cn.fn && !in0_rewired && !in1_rewired) {
      continue;  // only ignored operands rewired: phenotype unchanged
    }
    seen_nodes_.push_back(k);
    effective = true;
    const circuit::gate_fn pf = fs[pn.fn];
    const bool p0_read = circuit::depends_on_a(pf);
    const bool p1_read = circuit::depends_on_b(pf);
    if (p0_read != in0_read || in0_rewired) {
      if (p0_read) bump(pn.in0, -1);
      if (in0_read) bump(cn.in0, +1);
    }
    if (p1_read != in1_read || in1_rewired) {
      if (p1_read) bump(pn.in1, -1);
      if (in1_read) bump(cn.in1, +1);
    }
  }
  return effective;
}

cone_program::delta cone_program::apply(const genotype& parent,
                                        const genotype& child,
                                        std::span<const std::uint32_t> dirty) {
  AXC_EXPECTS(child_dirty_.empty());  // previous child must be released
  const parameters& p = parent.params();
  const std::size_t node_gene_count = p.node_count() * 3;

  // Pass 1 — classification (shared with stage_child).
  bool activation = false;
  bool deactivation = false;
  if (!classify(parent, child, dirty, activation, deactivation)) {
    return delta::identical;
  }

  // Pass 2 — retarget the table: O(dirty) entry writes (idempotent on
  // duplicate indices), restored from the parent's genes at
  // release_child().  Inactive dirty nodes are written too: a sibling
  // change may pull them into the child's cone.
  child_dirty_.assign(dirty.begin(), dirty.end());
  for (const std::uint32_t idx : dirty) {
    if (idx >= node_gene_count) {
      const std::size_t o = idx - node_gene_count;
      program_.set_output_slot(o, child.output_genes()[o]);
    } else {
      write_step(child, idx / 3);
    }
  }
  applied_child_ = &child;
  fns_valid_ = false;
  membership_deferred_ = false;

  // Pass 3 — membership.  No count crossed zero: the child's cone equals
  // the parent's (each member keeps an active reader chain, each
  // non-member stays unreferenced) and the index list is reused.  A node
  // activation needs the true cone (mark + repack).  Pure deactivation
  // shrinks the cone, and executing the parent's superset is exact — the
  // dropped gates feed no output — so the walk is skipped there too.
  if (activation) {
    child.mark_cone(scratch_flags_);
    if (scratch_flags_ != active_) {
      program_.set_active_from_flags(scratch_flags_.data(),
                                     scratch_flags_.size());
      indices_stale_ = true;
      return delta::recompiled;
    }
  }
  if (indices_stale_) {
    // A previously recompiled sibling left its membership in the list.
    program_.set_active_from_flags(active_.data(), active_.size());
    indices_stale_ = false;
  }
  if (deactivation && !activation) {
    membership_deferred_ = true;
    return delta::recompiled;
  }
  return delta::patched;
}

void cone_program::release_child(const genotype& parent) {
  const parameters& p = parent.params();
  const std::size_t node_gene_count = p.node_count() * 3;
  for (const std::uint32_t idx : child_dirty_) {
    if (idx >= node_gene_count) {
      const std::size_t o = idx - node_gene_count;
      program_.set_output_slot(o, parent.output_genes()[o]);
    } else {
      write_step(parent, idx / 3);
    }
  }
  child_dirty_.clear();
  for (const auto& [t, d] : ref_journal_) {
    refcnt_[t] -= static_cast<std::uint32_t>(d);
  }
  ref_journal_.clear();
  applied_child_ = nullptr;
  membership_deferred_ = false;
  fns_valid_ = false;
  // indices_stale_ stays as-is: the next apply() repacks lazily if needed.
}

cone_program::delta cone_program::stage_child(
    const genotype& parent, const genotype& child,
    std::span<const std::uint32_t> dirty, staged_child& out) {
  AXC_EXPECTS(child_dirty_.empty());  // schedule must model the parent
  const parameters& p = parent.params();
  const std::size_t node_gene_count = p.node_count() * 3;
  const std::uint32_t ni = static_cast<std::uint32_t>(p.num_inputs);
  constexpr auto kW = static_cast<std::uint32_t>(lanes);

  out.fns_valid = false;
  out.has_flags = false;

  // Classification reuses apply()'s pass 1, but the edge deltas are
  // reverted before returning: on the batch path the counts (like the
  // table) permanently describe the parent, so there is nothing to
  // release.  Between fold and revert the counts are the *child's*, which
  // is exactly the membership screen the patch emission below needs.
  bool activation = false;
  bool deactivation = false;
  const bool effective =
      classify(parent, child, dirty, activation, deactivation);
  const auto unfold = [this] {
    for (const auto& [t, rd] : ref_journal_) {
      refcnt_[t] -= static_cast<std::uint32_t>(rd);
    }
    ref_journal_.clear();
  };
  if (!effective) {
    unfold();
    out.kind = delta::identical;
    return out.kind;
  }

  // Membership.  Only an activating child carries its own cone flags —
  // batch_union() must extend the executed list with them.  Everything
  // else (same cone, or deactivation-only) executes inside the parent's
  // list: the superset is exact, dropped gates feed no output.
  if (activation) {
    child.mark_cone(scratch_flags_);
    if (scratch_flags_ != active_) {
      out.flags = scratch_flags_;
      out.has_flags = true;
    }
  }
  out.kind = out.has_flags || (deactivation && !activation)
                 ? delta::recompiled
                 : delta::patched;

  // Patch emission: every dirty node whose child genes differ and that is
  // in the *child's* cone overrides the parent's table entry.  (classify()
  // skips inactive dirty nodes, but a sibling gene change may have pulled
  // them into the child's cone — the flags/refcnt screen here catches
  // those.)  Nodes outside the child's cone keep the parent's content;
  // their rows are never read by the child's outputs.
  out.patch_nodes.clear();
  out.patch_steps.clear();
  stage_seen_.clear();
  for (const std::uint32_t idx : dirty) {
    if (idx >= node_gene_count) continue;  // outputs handled wholesale
    const std::uint32_t k = idx / 3;
    if (contains(stage_seen_, k)) continue;
    stage_seen_.push_back(k);
    if (parent.nodes()[k] == child.nodes()[k]) continue;
    const bool in_cone =
        out.has_flags ? out.flags[k] != 0 : refcnt_[k] > 0;
    if (!in_cone) continue;
    const genotype::node_genes& n = child.nodes()[k];
    out.patch_nodes.push_back(k);
    out.patch_steps.push_back(circuit::sim_step{
        p.function_set[n.fn], n.in0 * kW, n.in1 * kW, (ni + k) * kW});
  }
  // Ascending node order (the walk consumes patches in index order); the
  // dirty list is mutation-ordered, so insertion-sort the handful.
  for (std::size_t i = 1; i < out.patch_nodes.size(); ++i) {
    for (std::size_t j = i;
         j > 0 && out.patch_nodes[j - 1] > out.patch_nodes[j]; --j) {
      std::swap(out.patch_nodes[j - 1], out.patch_nodes[j]);
      std::swap(out.patch_steps[j - 1], out.patch_steps[j]);
    }
  }

  // Output rows, child genes (copied wholesale — cheaper than tracking
  // which moved).
  const std::span<const std::uint32_t> og = child.output_genes();
  out.out_offsets.resize(og.size());
  for (std::size_t o = 0; o < og.size(); ++o) {
    out.out_offsets[o] = og[o] * kW;
  }

  unfold();
  return out.kind;
}

std::span<const std::uint32_t> cone_program::batch_union(
    std::span<const staged_child* const> staged) {
  if (indices_stale_) {
    // A mixed apply()/stage_child() caller may have left a recompiled
    // sibling's membership in the index list; the batch executes the
    // parent's own list (plus activations).
    program_.set_active_from_flags(active_.data(), active_.size());
    indices_stale_ = false;
  }
  bool any_flags = false;
  for (const staged_child* s : staged) any_flags |= s->has_flags;
  if (!any_flags) return program_.active_indices();

  union_flags_ = active_;
  for (const staged_child* s : staged) {
    if (!s->has_flags) continue;
    for (std::size_t k = 0; k < union_flags_.size(); ++k) {
      union_flags_[k] |= s->flags[k];
    }
  }
  union_idx_.clear();
  for (std::size_t k = 0; k < union_flags_.size(); ++k) {
    if (union_flags_[k] != 0) {
      union_idx_.push_back(static_cast<std::uint32_t>(k));
    }
  }
  return union_idx_;
}

std::span<const circuit::gate_fn> cone_program::stage_fns(
    const genotype& child, staged_child& s) {
  if (!s.fns_valid) {
    const parameters& p = child.params();
    s.fns.clear();
    if (s.kind == delta::patched) {
      // Membership unchanged: the parent's flags with the child's gate
      // functions — same emission order as step_fns() on an applied child.
      for (std::size_t k = 0; k < active_.size(); ++k) {
        if (active_[k]) {
          s.fns.push_back(p.function_set[child.nodes()[k].fn]);
        }
      }
    } else if (s.has_flags) {
      for (std::size_t k = 0; k < s.flags.size(); ++k) {
        if (s.flags[k]) {
          s.fns.push_back(p.function_set[child.nodes()[k].fn]);
        }
      }
    } else {
      // Deactivation-only: derive the true membership, exactly like
      // step_fns() on the superset-execution path.
      child.mark_cone(scratch_flags_);
      for (std::size_t k = 0; k < scratch_flags_.size(); ++k) {
        if (scratch_flags_[k]) {
          s.fns.push_back(p.function_set[child.nodes()[k].fn]);
        }
      }
    }
    s.fns_valid = true;
  }
  return s.fns;
}

std::span<const circuit::gate_fn> cone_program::step_fns() {
  if (!fns_valid_) {
    if (applied_child_ == nullptr && indices_stale_) {
      // Reading the bound parent after a recompiled sibling was released:
      // repair the index list before deriving the gate list from it.
      program_.set_active_from_flags(active_.data(), active_.size());
      indices_stale_ = false;
    }
    if (membership_deferred_) {
      // Superset execution: derive the child's true cone for area parity
      // with the decoded netlist (the sweep itself never needed it).
      applied_child_->mark_cone(scratch_flags_);
      const parameters& p = applied_child_->params();
      fns_.clear();
      for (std::size_t k = 0; k < scratch_flags_.size(); ++k) {
        if (scratch_flags_[k]) {
          fns_.push_back(p.function_set[applied_child_->nodes()[k].fn]);
        }
      }
    } else {
      fns_.resize(program_.active_count());
      for (std::size_t i = 0; i < fns_.size(); ++i) {
        fns_[i] = program_.table_fn(program_.active_index(i));
      }
    }
    fns_valid_ = true;
  }
  return fns_;
}

}  // namespace axc::cgp
