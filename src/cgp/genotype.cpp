#include "cgp/genotype.h"

#include <string>

#include "support/assert.h"

namespace axc::cgp {

std::string parameters::validate() const {
  if (num_inputs == 0) return "num_inputs must be positive";
  if (num_outputs == 0) return "num_outputs must be positive";
  if (columns == 0 || rows == 0) return "grid must be non-empty";
  if (levels_back == 0) return "levels_back must be positive";
  if (function_set.empty()) return "function set must not be empty";
  if (max_mutations == 0) return "max_mutations must be positive";
  if (lambda == 0) return "lambda must be positive";
  return {};
}

genotype::genotype(parameters params)
    : params_(std::move(params)),
      nodes_(params_.node_count(), node_genes{0, 0, 0}),
      outputs_(params_.num_outputs, 0) {
  AXC_EXPECTS(params_.validate().empty());
}

std::uint32_t genotype::random_source(std::size_t column, rng& gen) const {
  const std::size_t ni = params_.num_inputs;
  const std::size_t r = params_.rows;
  const std::size_t first_col =
      column > params_.levels_back ? column - params_.levels_back : 0;
  const std::size_t reachable_nodes = r * (column - first_col);
  const std::uint64_t pick = gen.below(ni + reachable_nodes);
  if (pick < ni) return static_cast<std::uint32_t>(pick);
  return static_cast<std::uint32_t>(ni + first_col * r + (pick - ni));
}

genotype genotype::random(parameters params, rng& gen) {
  genotype g(std::move(params));
  const parameters& p = g.params_;
  for (std::size_t k = 0; k < p.node_count(); ++k) {
    const std::size_t column = k / p.rows;
    g.nodes_[k].in0 = g.random_source(column, gen);
    g.nodes_[k].in1 = g.random_source(column, gen);
    g.nodes_[k].fn =
        static_cast<std::uint32_t>(gen.below(p.function_set.size()));
  }
  for (auto& out : g.outputs_) {
    out = static_cast<std::uint32_t>(
        gen.below(p.num_inputs + p.node_count()));
  }
  return g;
}

genotype genotype::from_netlist(parameters params, const circuit::netlist& nl,
                                rng& gen) {
  AXC_EXPECTS(params.rows == 1);
  AXC_EXPECTS(nl.num_inputs() == params.num_inputs);
  AXC_EXPECTS(nl.num_outputs() == params.num_outputs);
  AXC_EXPECTS(nl.num_gates() <= params.node_count());

  genotype g = random(std::move(params), gen);
  const parameters& p = g.params_;

  for (std::size_t k = 0; k < nl.num_gates(); ++k) {
    const circuit::gate_node& gate = nl.gate(k);
    std::uint32_t fn_index = 0;
    bool found = false;
    for (std::size_t f = 0; f < p.function_set.size(); ++f) {
      if (p.function_set[f] == gate.fn) {
        fn_index = static_cast<std::uint32_t>(f);
        found = true;
        break;
      }
    }
    AXC_EXPECTS(found);  // the seed must only use functions from the set
    g.nodes_[k] = node_genes{gate.in0, gate.in1, fn_index};
  }
  for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
    g.outputs_[o] = nl.output(o);
  }
  return g;
}

void genotype::mutate(rng& gen) { mutate_impl(gen, nullptr); }

void genotype::mutate(rng& gen, std::vector<std::uint32_t>& dirty) {
  mutate_impl(gen, &dirty);
}

void genotype::mutate_impl(rng& gen, std::vector<std::uint32_t>* dirty) {
  const parameters& p = params_;
  const std::size_t node_gene_count = p.node_count() * 3;
  const std::size_t total = p.gene_count();
  const auto changes = 1 + gen.below(p.max_mutations);

  for (std::uint64_t m = 0; m < changes; ++m) {
    const std::uint64_t g = gen.below(total);
    if (dirty != nullptr) dirty->push_back(static_cast<std::uint32_t>(g));
    if (g < node_gene_count) {
      const std::size_t k = g / 3;
      const std::size_t column = k / p.rows;
      switch (g % 3) {
        case 0: nodes_[k].in0 = random_source(column, gen); break;
        case 1: nodes_[k].in1 = random_source(column, gen); break;
        default:
          nodes_[k].fn =
              static_cast<std::uint32_t>(gen.below(p.function_set.size()));
      }
    } else {
      outputs_[g - node_gene_count] = static_cast<std::uint32_t>(
          gen.below(p.num_inputs + p.node_count()));
    }
  }
}

void genotype::copy_genes_from(const genotype& src,
                               std::span<const std::uint32_t> genes) {
  AXC_EXPECTS(src.nodes_.size() == nodes_.size() &&
              src.outputs_.size() == outputs_.size());
  const std::size_t node_gene_count = nodes_.size() * 3;
  for (const std::uint32_t g : genes) {
    if (g < node_gene_count) {
      const std::size_t k = g / 3;
      switch (g % 3) {
        case 0: nodes_[k].in0 = src.nodes_[k].in0; break;
        case 1: nodes_[k].in1 = src.nodes_[k].in1; break;
        default: nodes_[k].fn = src.nodes_[k].fn;
      }
    } else {
      const std::size_t o = g - node_gene_count;
      AXC_EXPECTS(o < outputs_.size());
      outputs_[o] = src.outputs_[o];
    }
  }
}

circuit::netlist genotype::decode() const {
  const parameters& p = params_;
  circuit::netlist nl(p.num_inputs, p.num_outputs);
  for (const node_genes& n : nodes_) {
    nl.add_gate(p.function_set[n.fn], n.in0, n.in1);
  }
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    nl.set_output(o, outputs_[o]);
  }
  return nl;
}

std::size_t genotype::mark_cone(std::vector<std::uint8_t>& flags) const {
  const parameters& p = params_;
  const std::uint32_t ni = static_cast<std::uint32_t>(p.num_inputs);

  // Reverse topological cone marking over the genes themselves, mirroring
  // netlist::active_mask() on the decoded netlist.
  flags.assign(nodes_.size(), 0);
  for (const std::uint32_t out : outputs_) {
    if (out >= ni) flags[out - ni] = 1;
  }
  std::size_t count = 0;

  // This walk is the hot part of the incremental search's cone delta
  // (cone_program::apply runs it for every edge-changing mutant).  Hoist
  // the per-node function_set indirection into a dependence-mask table
  // indexed by the fn *gene* (bit 0 = reads in0, bit 1 = reads in1).
  std::uint8_t dep[64];
  const std::size_t nf = p.function_set.size();
  if (nf <= 64) {
    for (std::size_t i = 0; i < nf; ++i) {
      const circuit::gate_fn fn = p.function_set[i];
      dep[i] = static_cast<std::uint8_t>(
          (circuit::depends_on_a(fn) ? 1u : 0u) |
          (circuit::depends_on_b(fn) ? 2u : 0u));
    }
    for (std::size_t k = nodes_.size(); k-- > 0;) {
      if (!flags[k]) continue;
      ++count;
      const node_genes& n = nodes_[k];
      const std::uint8_t m = dep[n.fn];
      if ((m & 1u) != 0 && n.in0 >= ni) flags[n.in0 - ni] = 1;
      if ((m & 2u) != 0 && n.in1 >= ni) flags[n.in1 - ni] = 1;
    }
    return count;
  }

  for (std::size_t k = nodes_.size(); k-- > 0;) {
    if (!flags[k]) continue;
    ++count;
    const node_genes& n = nodes_[k];
    const circuit::gate_fn fn = p.function_set[n.fn];
    if (circuit::depends_on_a(fn) && n.in0 >= ni) flags[n.in0 - ni] = 1;
    if (circuit::depends_on_b(fn) && n.in1 >= ni) flags[n.in1 - ni] = 1;
  }
  return count;
}

circuit::netlist genotype::decode_cone() const {
  const parameters& p = params_;
  const std::uint32_t ni = static_cast<std::uint32_t>(p.num_inputs);

  std::vector<std::uint8_t> active;
  mark_cone(active);

  // Emit active nodes in address order; ignored operands pointing at
  // inactive nodes rewire to address 0, as netlist::compacted() does.
  circuit::netlist nl(p.num_inputs, p.num_outputs);
  std::vector<std::uint32_t> remap(ni + nodes_.size(), 0);
  for (std::uint32_t i = 0; i < ni; ++i) remap[i] = i;
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    if (!active[k]) continue;
    const node_genes& n = nodes_[k];
    remap[ni + k] = nl.add_gate(p.function_set[n.fn], remap[n.in0],
                                remap[n.in1]);
  }
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    nl.set_output(o, remap[outputs_[o]]);
  }
  return nl;
}

std::size_t genotype::distance(const genotype& other) const {
  AXC_EXPECTS(other.nodes_.size() == nodes_.size());
  AXC_EXPECTS(other.outputs_.size() == outputs_.size());
  std::size_t diff = 0;
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    if (nodes_[k].in0 != other.nodes_[k].in0) ++diff;
    if (nodes_[k].in1 != other.nodes_[k].in1) ++diff;
    if (nodes_[k].fn != other.nodes_[k].fn) ++diff;
  }
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    if (outputs_[o] != other.outputs_[o]) ++diff;
  }
  return diff;
}

}  // namespace axc::cgp
