// Simulated-annealing search over CGP genotypes.
//
// A baseline for the paper's (1 + lambda) evolution strategy: identical
// representation, identical mutation operator, identical Eq.-1 objective —
// only the acceptance rule differs (Metropolis with a geometric cooling
// schedule instead of elitist selection).  Automated approximation tools
// in the literature (ABACUS [4]) use exactly this style of greedy/annealed
// iterative refinement, so the comparison bench (ablation_search) contrasts
// the two search paradigms at equal evaluation budget.
#pragma once

#include "cgp/evolver.h"
#include "cgp/genotype.h"

namespace axc::cgp {

class annealer {
 public:
  struct options {
    std::size_t iterations{10000};
    /// Start temperature as a fraction of the seed's cost (relative scale
    /// keeps one setting usable across circuit sizes).
    double initial_temperature_fraction{0.05};
    /// Geometric schedule down to this fraction of the initial temperature.
    double final_temperature_fraction{1e-4};
    /// Scalarization of Eq. 1's infeasible branch: cost = penalty*(1+error).
    double infeasible_penalty{1e9};
  };

  struct run_result {
    genotype best;
    evaluation best_eval;
    std::size_t iterations{0};
    std::size_t evaluations{0};
    std::size_t accepted{0};
    std::size_t uphill_accepted{0};
  };

  /// Scalar cost of an evaluation under the annealer's objective.
  static double cost(const evaluation& e, const options& opts);

  static run_result run(const genotype& seed,
                        const evolver::evaluate_fn& evaluate,
                        const options& opts, rng& gen);
};

}  // namespace axc::cgp
