#include "cgp/evolver.h"

#include <utility>

#include "support/assert.h"

namespace axc::cgp {

bool better(const evaluation& a, const evaluation& b) {
  if (a.feasible != b.feasible) return a.feasible;
  if (a.feasible) return a.area < b.area;
  return a.error < b.error;
}

bool not_worse(const evaluation& a, const evaluation& b) {
  return !better(b, a);
}

evolver::run_result evolver::run(const genotype& seed,
                                 const evaluate_fn& evaluate,
                                 const options& opts, rng& gen) {
  AXC_EXPECTS(evaluate != nullptr);

  run_result result{seed, evaluate(seed.decode()), 0, 1, 0, 0};
  genotype parent = seed;
  evaluation parent_eval = result.best_eval;
  const std::size_t lambda = parent.params().lambda;

  // Strict ordering used to pick the best offspring and to decide
  // acceptance; optionally refines Eq. 1 with an error tie-break.
  const auto strictly_better = [&opts](const evaluation& a,
                                       const evaluation& b) {
    if (better(a, b)) return true;
    if (opts.error_tiebreak && !better(b, a)) {
      // Equal under Eq. 1: compare errors.
      return a.error < b.error;
    }
    return false;
  };
  const auto acceptable = [&](const evaluation& a, const evaluation& b) {
    if (!opts.neutral_drift) return strictly_better(a, b);
    if (opts.error_tiebreak) {
      return strictly_better(a, b) || (!better(b, a) && a.error <= b.error);
    }
    return not_worse(a, b);
  };

  for (std::size_t iter = 0; iter < opts.iterations; ++iter) {
    genotype best_child = parent;
    evaluation best_child_eval{};
    bool have_child = false;

    for (std::size_t k = 0; k < lambda; ++k) {
      genotype child = parent;
      child.mutate(gen);
      const evaluation child_eval = evaluate(child.decode());
      ++result.evaluations;
      if (!have_child || strictly_better(child_eval, best_child_eval)) {
        best_child = std::move(child);
        best_child_eval = child_eval;
        have_child = true;
      }
    }

    const bool accept = acceptable(best_child_eval, parent_eval);
    if (accept) {
      const bool improved = better(best_child_eval, parent_eval);
      parent = std::move(best_child);
      parent_eval = best_child_eval;
      if (improved) {
        ++result.improvements;
        if (opts.on_improvement) opts.on_improvement(iter, parent_eval);
      } else {
        ++result.neutral_moves;
      }
    }
    ++result.iterations;
  }

  result.best = std::move(parent);
  result.best_eval = parent_eval;
  return result;
}

}  // namespace axc::cgp
