#include "cgp/evolver.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/assert.h"
#include "support/thread_pool.h"

namespace axc::cgp {

bool better(const evaluation& a, const evaluation& b) {
  if (a.feasible != b.feasible) return a.feasible;
  if (a.feasible) return a.area < b.area;
  return a.error < b.error;
}

bool not_worse(const evaluation& a, const evaluation& b) {
  return !better(b, a);
}

void incremental_evaluator::evaluate_children(
    const genotype& parent, const std::vector<genotype>& children,
    const std::vector<std::vector<std::uint32_t>>& dirty, std::size_t begin,
    std::size_t end, evaluation* out) {
  for (std::size_t k = begin; k < end; ++k) {
    out[k - begin] = evaluate_child(parent, children[k], dirty[k]);
  }
}

namespace {

/// Parallel offspring evaluation writes one slot per worker; padding the
/// slots to cache lines keeps a worker's store from invalidating its
/// neighbours' lines (false sharing — measurable on the ~microsecond
/// per-mutant evaluations of the incremental path).
struct alignas(64) padded_evaluation {
  evaluation value;
};
static_assert(alignof(padded_evaluation) == 64);
static_assert(sizeof(padded_evaluation) == 64);

/// One (1 + lambda) run, shared by the netlist-based and incremental
/// pipelines.  Hooks:
///   initial(seed) -> evaluation                     (first parent score)
///   mutate_children(parent, children, gen)          (refresh + mutate all)
///   evaluate_offspring(parent, parent_eval, children, evals)
///   on_accept(best_k)                               (parent was replaced)
///
/// Acceptance *swaps* parent and the winning child instead of moving: the
/// displaced child slot then holds the old parent, which differs from the
/// new parent by exactly the winner's dirty genes.  The incremental
/// pipeline exploits this to refresh children by O(dirty) gene resync
/// instead of full-genotype copies.
template <typename init_fn, typename mutate_fn, typename eval_fn,
          typename accept_fn>
evolver::run_result run_core(const genotype& seed, const init_fn& initial,
                             const mutate_fn& mutate_children,
                             const eval_fn& evaluate_offspring,
                             const accept_fn& on_accept,
                             const evolver::options& opts, rng& gen) {
  evolver::run_result result{seed, initial(seed), 0, 1, 0, 0};
  genotype parent = seed;
  evaluation parent_eval = result.best_eval;
  const std::size_t lambda = parent.params().lambda;

  // Strict ordering used to pick the best offspring and to decide
  // acceptance; optionally refines Eq. 1 with an error tie-break.
  const auto strictly_better = [&opts](const evaluation& a,
                                       const evaluation& b) {
    if (better(a, b)) return true;
    if (opts.error_tiebreak && !better(b, a)) {
      // Equal under Eq. 1: compare errors.
      return a.error < b.error;
    }
    return false;
  };
  const auto acceptable = [&](const evaluation& a, const evaluation& b) {
    if (!opts.neutral_drift) return strictly_better(a, b);
    if (opts.error_tiebreak) {
      return strictly_better(a, b) || (!better(b, a) && a.error <= b.error);
    }
    return not_worse(a, b);
  };

  std::vector<genotype> children(lambda, parent);
  std::vector<evaluation> evals(lambda);

  for (std::size_t iter = 0; iter < opts.iterations; ++iter) {
    if (opts.should_stop && opts.should_stop()) {
      result.stopped = true;
      break;
    }
    // Mutation consumes the shared RNG serially, in offspring order —
    // identical draws whether evaluation below is serial or parallel.
    mutate_children(parent, children, gen);
    evaluate_offspring(parent, parent_eval, children, evals);
    result.evaluations += lambda;

    // Deterministic reduction: scan in mutation order, keep the earliest
    // strictly-best offspring (the serial loop's semantics).
    std::size_t best_k = 0;
    for (std::size_t k = 1; k < lambda; ++k) {
      if (strictly_better(evals[k], evals[best_k])) best_k = k;
    }

    if (acceptable(evals[best_k], parent_eval)) {
      const bool improved = better(evals[best_k], parent_eval);
      std::swap(parent, children[best_k]);
      parent_eval = evals[best_k];
      on_accept(best_k);
      if (improved) {
        ++result.improvements;
        if (opts.on_improvement) opts.on_improvement(iter, parent_eval);
      } else {
        ++result.neutral_moves;
      }
    }
    ++result.iterations;
    if (opts.on_generation) opts.on_generation(iter, parent_eval);
  }

  result.best = std::move(parent);
  result.best_eval = parent_eval;
  return result;
}

/// The plain mutation hook of the netlist-based pipelines.
void mutate_plain(const genotype& parent, std::vector<genotype>& children,
                  rng& gen) {
  for (genotype& child : children) {
    child = parent;
    child.mutate(gen);
  }
}

constexpr auto no_accept_hook = [](std::size_t) {};

}  // namespace

evolver::run_result evolver::run(const genotype& seed,
                                 const evaluate_fn& evaluate,
                                 const options& opts, rng& gen) {
  AXC_EXPECTS(evaluate != nullptr);
  const auto initial = [&evaluate](const genotype& g) {
    return evaluate(g.decode_cone());
  };
  const auto evaluate_offspring = [&evaluate](const genotype&,
                                              const evaluation&,
                                              std::vector<genotype>& children,
                                              std::vector<evaluation>& evals) {
    for (std::size_t k = 0; k < children.size(); ++k) {
      evals[k] = evaluate(children[k].decode_cone());
    }
  };
  return run_core(seed, initial, mutate_plain, evaluate_offspring,
                  no_accept_hook, opts, gen);
}

evolver::run_result evolver::run_parallel(const genotype& seed,
                                          const evaluator_factory& factory,
                                          const options& opts,
                                          std::size_t threads, rng& gen) {
  AXC_EXPECTS(factory != nullptr);
  AXC_EXPECTS(threads >= 1);

  // One evaluator per offspring slot: no sharing across workers, and slot k
  // always evaluates with the same instance regardless of scheduling.
  const std::size_t lambda = seed.params().lambda;
  std::vector<evaluate_fn> evaluators;
  evaluators.reserve(lambda);
  for (std::size_t k = 0; k < lambda; ++k) {
    evaluators.push_back(factory());
    AXC_EXPECTS(evaluators.back() != nullptr);
  }
  const auto initial = [&evaluators](const genotype& g) {
    return evaluators[0](g.decode_cone());
  };

  if (threads == 1 || lambda == 1) {
    const auto evaluate_offspring =
        [&evaluators](const genotype&, const evaluation&,
                      std::vector<genotype>& children,
                      std::vector<evaluation>& evals) {
          for (std::size_t k = 0; k < children.size(); ++k) {
            evals[k] = evaluators[k](children[k].decode_cone());
          }
        };
    return run_core(seed, initial, mutate_plain, evaluate_offspring,
                    no_accept_hook, opts, gen);
  }

  thread_pool pool(std::min(threads, lambda));
  std::vector<padded_evaluation> slots(lambda);
  const auto evaluate_offspring = [&evaluators, &pool, &slots](
                                      const genotype&, const evaluation&,
                                      std::vector<genotype>& children,
                                      std::vector<evaluation>& evals) {
    parallel_for(pool, children.size(), [&](std::size_t k) {
      slots[k].value = evaluators[k](children[k].decode_cone());
    });
    for (std::size_t k = 0; k < children.size(); ++k) {
      evals[k] = slots[k].value;
    }
  };
  return run_core(seed, initial, mutate_plain, evaluate_offspring,
                  no_accept_hook, opts, gen);
}

evolver::run_result evolver::run_incremental(const genotype& seed,
                                             const incremental_factory& factory,
                                             const options& opts,
                                             std::size_t threads, rng& gen) {
  AXC_EXPECTS(factory != nullptr);
  AXC_EXPECTS(threads >= 1);

  const std::size_t lambda = seed.params().lambda;
  const std::size_t workers = std::min(threads, lambda);
  const bool batch = opts.batch_candidates;
  // Serial: one evaluator serves every slot (one parent compile per
  // acceptance).  Parallel: one evaluator per slot, never shared across
  // workers; each rebinds lazily on its first evaluation after the parent
  // changed.  Batch: one evaluator per *worker*, each scoring a contiguous
  // chunk of the generation through evaluate_children().  Evaluations are
  // pure functions of (parent, child), so every arrangement — and any
  // worker scheduling — is bit-identical.
  const std::size_t count = batch ? workers : (workers == 1 ? 1 : lambda);
  std::vector<std::unique_ptr<incremental_evaluator>> evaluators;
  evaluators.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    evaluators.push_back(factory());
    AXC_EXPECTS(evaluators.back() != nullptr);
  }

  std::uint64_t parent_version = 1;
  std::vector<std::uint64_t> bound_version(count, 0);
  const auto initial = [&](const genotype& g) {
    bound_version[0] = parent_version;
    return evaluators[0]->evaluate_and_bind(g);
  };

  // Mutation with dirty-gene recording; RNG draws are identical to the
  // plain mutate(), so incremental and netlist-based runs share streams.
  //
  // Children are refreshed by O(dirty) gene resync instead of whole-genotype
  // copies (the genotype is ~kilobytes; a generation touches ~h genes).
  // resync[k] names every gene by which child k may differ from the current
  // parent: its own last mutation, plus — after an acceptance, where
  // run_core swaps the winner into the parent slot — the winner's dirty
  // genes, appended to every other child's list by on_accept below.
  std::vector<std::vector<std::uint32_t>> dirty(lambda);
  std::vector<std::vector<std::uint32_t>> resync(lambda);
  const auto mutate_children = [&dirty, &resync](const genotype& parent,
                                                 std::vector<genotype>& children,
                                                 rng& g) {
    for (std::size_t k = 0; k < children.size(); ++k) {
      children[k].copy_genes_from(parent, resync[k]);
      dirty[k].clear();
      children[k].mutate(g, dirty[k]);
      resync[k] = dirty[k];
    }
  };

  const auto bind_slot = [&](std::size_t slot, const genotype& parent,
                             const evaluation& parent_eval) {
    if (bound_version[slot] != parent_version) {
      evaluators[slot]->rebind(parent, parent_eval);
      bound_version[slot] = parent_version;
    }
  };
  const auto on_accept = [&parent_version, &dirty,
                          &resync](std::size_t best_k) {
    ++parent_version;
    // The swapped-out child (slot best_k) is the old parent: it differs
    // from the new parent by exactly the accepted dirty genes, which is
    // already what resync[best_k] holds.  Every other child now also
    // differs by those genes on top of its own mutation.
    const std::vector<std::uint32_t>& acc = dirty[best_k];
    for (std::size_t k = 0; k < resync.size(); ++k) {
      if (k == best_k) continue;
      resync[k].insert(resync[k].end(), acc.begin(), acc.end());
    }
  };

  if (batch) {
    if (workers == 1) {
      const auto evaluate_offspring = [&](const genotype& parent,
                                          const evaluation& parent_eval,
                                          std::vector<genotype>& children,
                                          std::vector<evaluation>& evals) {
        bind_slot(0, parent, parent_eval);
        evaluators[0]->evaluate_children(parent, children, dirty, 0,
                                         children.size(), evals.data());
      };
      return run_core(seed, initial, mutate_children, evaluate_offspring,
                      on_accept, opts, gen);
    }
    // Each worker batches a contiguous chunk into its own staging vector
    // (separate heap blocks — no false sharing on the result stores).
    thread_pool pool(workers);
    const std::size_t chunk = (lambda + workers - 1) / workers;
    std::vector<std::vector<evaluation>> stage(workers);
    const auto evaluate_offspring = [&](const genotype& parent,
                                        const evaluation& parent_eval,
                                        std::vector<genotype>& children,
                                        std::vector<evaluation>& evals) {
      parallel_for(pool, workers, [&](std::size_t wk) {
        const std::size_t begin = wk * chunk;
        const std::size_t end = std::min(begin + chunk, children.size());
        if (begin >= end) return;
        bind_slot(wk, parent, parent_eval);
        stage[wk].resize(end - begin);
        evaluators[wk]->evaluate_children(parent, children, dirty, begin, end,
                                          stage[wk].data());
      });
      for (std::size_t wk = 0; wk < workers; ++wk) {
        const std::size_t begin = wk * chunk;
        for (std::size_t i = 0; i < stage[wk].size() && begin + i < lambda;
             ++i) {
          evals[begin + i] = stage[wk][i];
        }
      }
    };
    return run_core(seed, initial, mutate_children, evaluate_offspring,
                    on_accept, opts, gen);
  }

  const auto eval_one = [&](const genotype& parent,
                            const evaluation& parent_eval,
                            std::vector<genotype>& children, std::size_t k,
                            evaluation& out) {
    const std::size_t slot = count == 1 ? 0 : k;
    bind_slot(slot, parent, parent_eval);
    out = evaluators[slot]->evaluate_child(parent, children[k], dirty[k]);
  };

  if (workers == 1) {
    const auto evaluate_offspring = [&](const genotype& parent,
                                        const evaluation& parent_eval,
                                        std::vector<genotype>& children,
                                        std::vector<evaluation>& evals) {
      for (std::size_t k = 0; k < children.size(); ++k) {
        eval_one(parent, parent_eval, children, k, evals[k]);
      }
    };
    return run_core(seed, initial, mutate_children, evaluate_offspring,
                    on_accept, opts, gen);
  }

  thread_pool pool(workers);
  std::vector<padded_evaluation> slots(lambda);
  const auto evaluate_offspring = [&](const genotype& parent,
                                      const evaluation& parent_eval,
                                      std::vector<genotype>& children,
                                      std::vector<evaluation>& evals) {
    parallel_for(pool, children.size(), [&](std::size_t k) {
      eval_one(parent, parent_eval, children, k, slots[k].value);
    });
    for (std::size_t k = 0; k < children.size(); ++k) {
      evals[k] = slots[k].value;
    }
  };
  return run_core(seed, initial, mutate_children, evaluate_offspring,
                  on_accept, opts, gen);
}

}  // namespace axc::cgp
