#include "cgp/evolver.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/assert.h"
#include "support/thread_pool.h"

namespace axc::cgp {

bool better(const evaluation& a, const evaluation& b) {
  if (a.feasible != b.feasible) return a.feasible;
  if (a.feasible) return a.area < b.area;
  return a.error < b.error;
}

bool not_worse(const evaluation& a, const evaluation& b) {
  return !better(b, a);
}

namespace {

/// One (1 + lambda) run; `evaluate_offspring` fills evals[0..lambda) for the
/// already-mutated children of this generation (serially or across a pool).
template <typename offspring_eval_fn>
evolver::run_result run_core(const genotype& seed,
                             const evolver::evaluate_fn& evaluate_parent,
                             const offspring_eval_fn& evaluate_offspring,
                             const evolver::options& opts, rng& gen) {
  evolver::run_result result{seed, evaluate_parent(seed.decode_cone()), 0, 1,
                             0, 0};
  genotype parent = seed;
  evaluation parent_eval = result.best_eval;
  const std::size_t lambda = parent.params().lambda;

  // Strict ordering used to pick the best offspring and to decide
  // acceptance; optionally refines Eq. 1 with an error tie-break.
  const auto strictly_better = [&opts](const evaluation& a,
                                       const evaluation& b) {
    if (better(a, b)) return true;
    if (opts.error_tiebreak && !better(b, a)) {
      // Equal under Eq. 1: compare errors.
      return a.error < b.error;
    }
    return false;
  };
  const auto acceptable = [&](const evaluation& a, const evaluation& b) {
    if (!opts.neutral_drift) return strictly_better(a, b);
    if (opts.error_tiebreak) {
      return strictly_better(a, b) || (!better(b, a) && a.error <= b.error);
    }
    return not_worse(a, b);
  };

  std::vector<genotype> children(lambda, parent);
  std::vector<evaluation> evals(lambda);

  for (std::size_t iter = 0; iter < opts.iterations; ++iter) {
    // Mutation consumes the shared RNG serially, in offspring order —
    // identical draws whether evaluation below is serial or parallel.
    for (std::size_t k = 0; k < lambda; ++k) {
      children[k] = parent;
      children[k].mutate(gen);
    }
    evaluate_offspring(children, evals);
    result.evaluations += lambda;

    // Deterministic reduction: scan in mutation order, keep the earliest
    // strictly-best offspring (the serial loop's semantics).
    std::size_t best_k = 0;
    for (std::size_t k = 1; k < lambda; ++k) {
      if (strictly_better(evals[k], evals[best_k])) best_k = k;
    }

    if (acceptable(evals[best_k], parent_eval)) {
      const bool improved = better(evals[best_k], parent_eval);
      parent = std::move(children[best_k]);
      parent_eval = evals[best_k];
      if (improved) {
        ++result.improvements;
        if (opts.on_improvement) opts.on_improvement(iter, parent_eval);
      } else {
        ++result.neutral_moves;
      }
    }
    ++result.iterations;
  }

  result.best = std::move(parent);
  result.best_eval = parent_eval;
  return result;
}

}  // namespace

evolver::run_result evolver::run(const genotype& seed,
                                 const evaluate_fn& evaluate,
                                 const options& opts, rng& gen) {
  AXC_EXPECTS(evaluate != nullptr);
  const auto evaluate_offspring = [&evaluate](std::vector<genotype>& children,
                                              std::vector<evaluation>& evals) {
    for (std::size_t k = 0; k < children.size(); ++k) {
      evals[k] = evaluate(children[k].decode_cone());
    }
  };
  return run_core(seed, evaluate, evaluate_offspring, opts, gen);
}

evolver::run_result evolver::run_parallel(const genotype& seed,
                                          const evaluator_factory& factory,
                                          const options& opts,
                                          std::size_t threads, rng& gen) {
  AXC_EXPECTS(factory != nullptr);
  AXC_EXPECTS(threads >= 1);

  // One evaluator per offspring slot: no sharing across workers, and slot k
  // always evaluates with the same instance regardless of scheduling.
  const std::size_t lambda = seed.params().lambda;
  std::vector<evaluate_fn> evaluators;
  evaluators.reserve(lambda);
  for (std::size_t k = 0; k < lambda; ++k) {
    evaluators.push_back(factory());
    AXC_EXPECTS(evaluators.back() != nullptr);
  }

  if (threads == 1 || lambda == 1) {
    const auto evaluate_offspring =
        [&evaluators](std::vector<genotype>& children,
                      std::vector<evaluation>& evals) {
          for (std::size_t k = 0; k < children.size(); ++k) {
            evals[k] = evaluators[k](children[k].decode_cone());
          }
        };
    return run_core(seed, evaluators[0], evaluate_offspring, opts, gen);
  }

  thread_pool pool(std::min(threads, lambda));
  const auto evaluate_offspring = [&evaluators, &pool](
                                      std::vector<genotype>& children,
                                      std::vector<evaluation>& evals) {
    parallel_for(pool, children.size(), [&](std::size_t k) {
      evals[k] = evaluators[k](children[k].decode_cone());
    });
  };
  return run_core(seed, evaluators[0], evaluate_offspring, opts, gen);
}

}  // namespace axc::cgp
