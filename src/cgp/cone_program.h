// Genotype-native compiled cone schedule with incremental patching — the
// evaluation pipeline of the CGP search without the per-mutant netlist
// round-trip.
//
// PR 1 made the WMED sweep itself fast; the remaining per-mutant cost was
// the pipeline *around* it: genotype::decode_cone() materializes a netlist,
// sim_program::rebuild() re-derives the cone and re-packs a dense slot
// space, both allocating and both repeating work the parent already paid
// for.  cone_program removes that round-trip with three ideas:
//
//  1. *Stable slots.*  The sim_program slot space is the CGP address space
//     itself (inputs, then one slot per grid node), so operand genes ARE
//     slot indices and cone-membership changes never renumber anything.
//     Inactive slots are merely never written — and never read, because an
//     active node's read operands are active by the cone rule, and
//     sim_program::run() only reads operands its gate function depends on.
//  2. *Delta analysis per mutant.*  apply() classifies a child against the
//     bound parent from its dirty gene list alone: mutations that do not
//     change any gene value, or only touch inactive nodes, leave the
//     phenotype identical (the evaluator returns the parent's cached
//     score — CGP mutants frequently hit the inactive padding); mutations
//     that provably keep every dependence edge intact patch the affected
//     steps in place; anything else triggers a cone-membership delta walk.
//  3. *Cheap full fallback.*  When the delta walk finds membership changed,
//     the schedule is refilled directly from the genes (mark + emit, no
//     netlist, no slot resize, no allocation after the first bind).
//
// The schedule produced by any path is semantically identical to
// sim_program(decode_cone()) — parity-tested in
// tests/test_incremental_eval.cpp — and step_fns() lists the active gate
// functions in emission (node address) order, which lets area estimation
// run FP-identically to tech::estimate_area on the decoded cone netlist.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cgp/genotype.h"
#include "circuit/simulator.h"

namespace axc::cgp {

class cone_program {
 public:
  static constexpr std::size_t lanes = 8;

  /// Full genotype-native compile of `parent`'s active cone; `parent`
  /// becomes the bound base for apply()/release_child().
  void bind(const genotype& parent);

  /// How apply() retargeted the schedule from parent to child.
  enum class delta {
    identical,   ///< phenotype unchanged; schedule untouched
    patched,     ///< cone membership unchanged; steps patched in place
    recompiled,  ///< membership changed; schedule refilled from child
  };

  /// Retargets the schedule to `child`, a copy of the bound parent whose
  /// mutated flat gene indices are listed in `dirty` (from
  /// genotype::mutate(rng&, dirty); duplicates and no-op re-randomizations
  /// are fine).  `parent` must be the genotype passed to the last bind().
  /// Unless the result is `identical`, call release_child(parent) after
  /// evaluating before the next apply().
  ///
  /// Classification always runs against the parent's cached cone flags, so
  /// `identical` detection stays O(dirty) even while the compiled program
  /// still models a previously recompiled sibling (release_child is lazy:
  /// it replays patch journals but does not recompile the parent — the
  /// next non-identical mutant compiles straight from its own genes).
  delta apply(const genotype& parent, const genotype& child,
              std::span<const std::uint32_t> dirty);

  /// Ends the last non-identical apply(): reverts a patch journal in place;
  /// after a recompile it merely marks the schedule stale (see apply()).
  void release_child(const genotype& parent);

  [[nodiscard]] circuit::sim_program<lanes>& program() { return program_; }
  /// Active gate functions in emission (node address) order — the cone
  /// netlist's gate list, for netlist-free area estimation.
  [[nodiscard]] std::span<const circuit::gate_fn> step_fns() const {
    return fns_;
  }
  [[nodiscard]] std::size_t active_nodes() const { return fns_.size(); }

 private:
  /// Refills steps/outputs from `g` given its cone flags.
  void emit(const genotype& g, const std::vector<std::uint8_t>& flags);

  circuit::sim_program<lanes> program_;
  std::vector<circuit::gate_fn> fns_;        ///< per step, emission order
  std::vector<std::uint8_t> active_;         ///< parent cone flags, per node
  std::vector<std::uint32_t> step_of_node_;  ///< node -> step index
  std::vector<std::uint8_t> scratch_flags_;  ///< delta-walk cone recompute

  /// synced: program models the bound parent (patching legal).
  /// patched: program models a child via the journals (release replays).
  /// stale: program models some recompiled child (classification still
  ///        valid — it only needs active_ — but patching is not).
  enum class state { synced, patched, stale };
  state state_{state::synced};

  struct step_patch {
    std::uint32_t step;
    circuit::sim_program<lanes>::step_ref old_ref;
  };
  struct output_patch {
    std::uint32_t output;
    std::uint32_t old_slot;
  };
  std::vector<step_patch> step_journal_;
  std::vector<output_patch> output_journal_;

  static constexpr std::uint32_t kNoStep = 0xffffffffu;
};

}  // namespace axc::cgp
