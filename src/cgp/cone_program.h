// Genotype-native compiled cone schedule with incremental patching — the
// evaluation pipeline of the CGP search without the per-mutant netlist
// round-trip.
//
// PR 1 made the WMED sweep itself fast; the remaining per-mutant cost was
// the pipeline *around* it: genotype::decode_cone() materializes a netlist,
// sim_program::rebuild() re-derives the cone and re-packs a dense slot
// space, both allocating and both repeating work the parent already paid
// for.  cone_program removes that round-trip with four ideas:
//
//  1. *Stable slots.*  The sim_program slot space is the CGP address space
//     itself (inputs, then one slot per grid node), so operand genes ARE
//     slot indices and cone-membership changes never renumber anything.
//     Inactive slots are merely never written — and never read, because an
//     active node's read operands are active by the cone rule, and the
//     executors only read operands their gate function depends on.
//  2. *Table schedule.*  The program runs in sim_program's indexed mode:
//     one step-table entry per grid node plus a packed active-index list
//     (ascending node address = topological order).  A mutant then costs
//     O(dirty) table writes — never a re-emit of the whole step list — and
//     release_child() restores the touched entries from the parent's
//     genes, no journal needed.
//  3. *Reference-counted membership screen.*  bind() counts, per node, the
//     read-edges from active nodes plus output seeds (refcnt > 0 iff in
//     the cone).  apply() folds each effective edge change into these
//     counts in O(dirty); if no count crosses zero the child's cone
//     provably equals the parent's and the index list is reused outright —
//     the O(nodes) cone walk runs only when a count crossed.
//  4. *Superset execution on pure deactivation.*  When counts only
//     *dropped* to zero (no node gained its first reference) the child's
//     cone is a subset of the parent's; executing the parent's index list
//     is still exact — the dropped gates feed no output — so the walk and
//     repack are skipped and the true membership is derived lazily only if
//     area estimation asks for it (feasible candidates).  Only a mutant
//     that *activates* a node pays mark_cone + repack, and the repack is a
//     flags pack (SIMD compress-store under AVX-512), not a rebuild.
//
// The schedule produced by any path is observably identical to
// sim_program(decode_cone()) — parity-tested in
// tests/test_incremental_eval.cpp — and step_fns() lists the active gate
// functions in emission (node address) order, which lets area estimation
// run FP-identically to tech::estimate_area on the decoded cone netlist.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cgp/genotype.h"
#include "circuit/simulator.h"

namespace axc::cgp {

struct staged_child;

class cone_program {
 public:
  static constexpr std::size_t lanes = 8;

  /// Full genotype-native compile of `parent`'s active cone; `parent`
  /// becomes the bound base for apply()/release_child().
  void bind(const genotype& parent);

  /// How apply() retargeted the schedule from parent to child.
  enum class delta {
    identical,   ///< phenotype unchanged; schedule untouched
    patched,     ///< cone membership unchanged; table entries updated
    recompiled,  ///< membership changed (node activation or deactivation)
  };

  /// Retargets the schedule to `child`, a copy of the bound parent whose
  /// mutated flat gene indices are listed in `dirty` (from
  /// genotype::mutate(rng&, dirty); duplicates and no-op re-randomizations
  /// are fine).  `parent` must be the genotype passed to the last bind(),
  /// and `child` must outlive the evaluation (step_fns() may read it).
  /// Unless the result is `identical`, call release_child(parent) after
  /// evaluating before the next apply().
  delta apply(const genotype& parent, const genotype& child,
              std::span<const std::uint32_t> dirty);

  /// Ends the last non-identical apply(): restores the child's touched
  /// table entries and reference counts from the parent's genes
  /// (O(dirty)).  The index list is repaired lazily at the next apply().
  void release_child(const genotype& parent);

  /// The lambda-batch alternative to apply(): records how `child` diverges
  /// from the bound parent — the table entries it overrides (child genes,
  /// ascending node order), its output row offsets, and (only when it
  /// activates nodes) its cone flags — and leaves the schedule untouched.
  /// The program keeps modelling the parent and there is no release step,
  /// so any number of children can be staged per generation and executed
  /// in one batch pass (batch_union() + sim_program::run_batch, consumed
  /// by metrics::basic_wmed_evaluator::evaluate_batch).  Classification is
  /// identical to apply() — an `identical` result means `out` holds
  /// nothing and the child scores as the parent — and the cost is
  /// O(dirty), plus O(cone) only for the rare activating children.
  delta stage_child(const genotype& parent, const genotype& child,
                    std::span<const std::uint32_t> dirty, staged_child& out);

  /// The union execution list for a set of staged children: the parent's
  /// active-index list extended with every staged activation.  Executing
  /// this superset is exact for each child — a child's outputs read only
  /// its own cone, and every cone member is in the union with the child's
  /// own (patched) content.  The returned span aliases internal storage,
  /// valid until the next batch_union()/bind() call; when no child
  /// activates (the common case) it is the parent's own list, for free.
  std::span<const std::uint32_t> batch_union(
      std::span<const staged_child* const> staged);

  /// Active gate functions of a stage_child() child in emission order —
  /// the batch-path counterpart of step_fns(), for netlist-free area
  /// estimation (cached in `s`).  `child` must be the genotype `s` was
  /// staged from; not meaningful for `identical` stagings (use the
  /// parent's step_fns()).
  std::span<const circuit::gate_fn> stage_fns(const genotype& child,
                                              staged_child& s);

  [[nodiscard]] circuit::sim_program<lanes>& program() { return program_; }
  /// Active gate functions in emission (node address) order — the cone
  /// netlist's gate list, for netlist-free area estimation.  Valid for the
  /// currently applied child (or the bound parent); built on demand (on
  /// the superset-execution path this derives the child's true
  /// membership, which the sweep itself never needs).
  [[nodiscard]] std::span<const circuit::gate_fn> step_fns();
  /// Steps the next run() executes.  This is the *schedule* length, not
  /// always the true cone size: it is the parent's count while a
  /// deactivation-only child is applied (see idea 4 above), and a
  /// recompiled sibling's count between its release and the next
  /// apply()/bind() (the list is repaired lazily; step_fns() reports the
  /// true gate list in every state).
  [[nodiscard]] std::size_t active_nodes() const {
    return program_.active_count();
  }

 private:
  /// Writes node k's table entry from `g`'s genes.
  void write_step(const genotype& g, std::size_t k);
  /// Shared pass 1 of apply()/stage_child(): classifies the mutation
  /// against the bound parent, folding dependence-edge deltas into
  /// refcnt_ (journalled in ref_journal_) and recording the effectively
  /// changed nodes/outputs in seen_nodes_/seen_outputs_.  Returns whether
  /// any change is phenotype-visible.
  bool classify(const genotype& parent, const genotype& child,
                std::span<const std::uint32_t> dirty, bool& activation,
                bool& deactivation);

  circuit::sim_program<lanes> program_;
  std::vector<circuit::gate_fn> fns_;        ///< step_fns() cache
  bool fns_valid_{false};
  std::vector<std::uint8_t> active_;         ///< parent cone flags, per node
  std::vector<std::uint8_t> scratch_flags_;  ///< child cone recompute
  /// Per node: read-edges from active nodes + output seeds (> 0 iff in the
  /// parent's cone).  apply() folds the child's edge deltas in and
  /// release_child() reverts them via ref_journal_.
  std::vector<std::uint32_t> refcnt_;
  std::vector<std::pair<std::uint32_t, std::int32_t>> ref_journal_;
  /// Node / output ids already folded this apply() (mutate() may report
  /// several genes of one node; edge deltas must apply once per node).
  std::vector<std::uint32_t> seen_nodes_;
  std::vector<std::uint32_t> seen_outputs_;
  /// The applied child's dirty gene list (what release_child restores);
  /// empty when the schedule models the bound parent.
  std::vector<std::uint32_t> child_dirty_;
  /// The genotype the schedule currently models (for lazy step_fns()).
  const genotype* applied_child_{nullptr};
  /// The index list reflects a recompiled child's membership, not the
  /// parent's — repack from active_ before the next reuse.
  bool indices_stale_{false};
  /// Superset execution: the child's cone shrank but the parent's index
  /// list is still being executed; step_fns() derives the true membership.
  bool membership_deferred_{false};
  /// stage_child() / batch_union() scratch, reused across generations.
  std::vector<std::uint32_t> stage_seen_;   ///< dirty-node dedupe
  std::vector<std::uint8_t> union_flags_;   ///< OR of parent + activations
  std::vector<std::uint32_t> union_idx_;    ///< packed union list
};

/// One staged child of a lambda batch, filled by cone_program::
/// stage_child().  Reuse instances across generations: the contained
/// buffers stop allocating after the first child of a given size.  Offsets
/// are premultiplied by cone_program::lanes, matching what
/// sim_batch_lane / metrics::batch_candidate consume.
struct staged_child {
  cone_program::delta kind{cone_program::delta::identical};
  /// Table entries this child overrides (dirty nodes inside its cone):
  /// ascending node (table) indices with the child-gene step contents.
  std::vector<std::uint32_t> patch_nodes;
  std::vector<circuit::sim_step> patch_steps;
  /// Premultiplied output row offsets (the child's output genes).
  std::vector<std::uint32_t> out_offsets;
  /// Child cone flags — filled only when the child activates nodes, which
  /// is what batch_union() must extend the parent's list with.  A
  /// recompiled kind without flags is deactivation-only (superset
  /// execution, like apply()'s deferred-membership path).
  std::vector<std::uint8_t> flags;
  bool has_flags{false};
  /// stage_fns() cache.
  std::vector<circuit::gate_fn> fns;
  bool fns_valid{false};
};

}  // namespace axc::cgp
