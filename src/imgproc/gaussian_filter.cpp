#include "imgproc/gaussian_filter.h"

#include <algorithm>
#include <limits>

#include "support/assert.h"

namespace axc::imgproc {

namespace {

template <typename multiply_fn>
image filter_with(const image& src, const gaussian_kernel3& kernel,
                  multiply_fn&& multiply) {
  image out(src.width(), src.height());
  const unsigned total = kernel.total();
  AXC_EXPECTS(total > 0 && total < 256);

  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      std::int64_t acc = 0;
      std::size_t k = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx, ++k) {
          const std::uint8_t pixel =
              src.at_clamped(static_cast<std::int64_t>(x) + dx,
                             static_cast<std::int64_t>(y) + dy);
          acc += multiply(kernel.coefficients[k], pixel);
        }
      }
      // Rounded division by the coefficient sum, clamped to pixel range
      // (approximate products can overshoot).
      const std::int64_t value = (acc + total / 2) / total;
      out.at(x, y) =
          static_cast<std::uint8_t>(std::clamp<std::int64_t>(value, 0, 255));
    }
  }
  return out;
}

}  // namespace

image gaussian_filter_exact(const image& src, const gaussian_kernel3& kernel) {
  return filter_with(src, kernel,
                     [](std::uint8_t c, std::uint8_t p) -> std::int64_t {
                       return std::int64_t{c} * std::int64_t{p};
                     });
}

image gaussian_filter_approx(const image& src,
                             const metrics::compiled_mult_table& multiplier,
                             const gaussian_kernel3& kernel) {
  AXC_EXPECTS(multiplier.spec().width == 8);
  AXC_EXPECTS(!multiplier.spec().is_signed);
  return filter_with(src, kernel,
                     [&](std::uint8_t c, std::uint8_t p) -> std::int64_t {
                       return multiplier.by_pattern(c, p);
                     });
}

filter_quality evaluate_filter_quality(const metrics::compiled_mult_table& multiplier,
                                       std::size_t image_count,
                                       std::size_t image_size,
                                       double noise_sigma,
                                       std::uint64_t seed) {
  AXC_EXPECTS(image_count > 0);
  filter_quality quality;
  quality.min_psnr_db = std::numeric_limits<double>::infinity();

  rng gen(seed);
  for (std::size_t i = 0; i < image_count; ++i) {
    const image clean = make_test_scene(image_size, image_size, seed + i);
    const image noisy = add_gaussian_noise(clean, noise_sigma, gen);
    // Reference: the *exact* filter on the same noisy input.  This isolates
    // the error introduced by the approximate multipliers, which is what
    // Fig. 5 plots.
    const image reference = gaussian_filter_exact(noisy);
    const image filtered = gaussian_filter_approx(noisy, multiplier);
    const double p = psnr_db(reference, filtered);
    quality.mean_psnr_db += std::min(p, 100.0);  // cap +inf for averaging
    quality.min_psnr_db = std::min(quality.min_psnr_db, p);
  }
  quality.mean_psnr_db /= static_cast<double>(image_count);
  return quality;
}

}  // namespace axc::imgproc
