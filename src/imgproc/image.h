// 8-bit grayscale images and synthetic scene generation.
//
// The paper's Fig. 5 evaluates approximate multipliers inside a Gaussian
// image filter over 25 images.  We have no image corpus in this environment,
// so the substrate generates deterministic synthetic scenes (gradients,
// shapes, texture) that exercise the full intensity range, and injects
// Gaussian noise for the denoising experiment (see DESIGN.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "support/rng.h"

namespace axc::imgproc {

class image {
 public:
  image(std::size_t width, std::size_t height, std::uint8_t fill = 0);

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }

  [[nodiscard]] std::uint8_t at(std::size_t x, std::size_t y) const {
    return pixels_[y * width_ + x];
  }
  std::uint8_t& at(std::size_t x, std::size_t y) {
    return pixels_[y * width_ + x];
  }
  /// Clamped access: coordinates outside the image replicate the border
  /// (the usual convolution boundary handling).
  [[nodiscard]] std::uint8_t at_clamped(std::int64_t x, std::int64_t y) const;

  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const {
    return pixels_;
  }
  std::vector<std::uint8_t>& pixels() { return pixels_; }

  friend bool operator==(const image&, const image&) = default;

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<std::uint8_t> pixels_;
};

/// Deterministic synthetic test scene: smooth gradients + geometric shapes +
/// fine texture, exercising the full 0..255 range.  `variant` selects one of
/// many distinct scenes.
image make_test_scene(std::size_t width, std::size_t height,
                      std::uint64_t variant);

/// Additive Gaussian noise, clamped to [0, 255].
image add_gaussian_noise(const image& src, double sigma, rng& gen);

/// Peak signal-to-noise ratio in dB between a reference and a test image.
/// Identical images yield +infinity.
double psnr_db(const image& reference, const image& test);

/// Binary PGM (P5) writer, for eyeballing results outside the harness.
void write_pgm(std::ostream& os, const image& img);

}  // namespace axc::imgproc
