#include "imgproc/image.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "support/assert.h"

namespace axc::imgproc {

image::image(std::size_t width, std::size_t height, std::uint8_t fill)
    : width_(width), height_(height), pixels_(width * height, fill) {
  AXC_EXPECTS(width > 0 && height > 0);
}

std::uint8_t image::at_clamped(std::int64_t x, std::int64_t y) const {
  const std::int64_t cx =
      std::clamp<std::int64_t>(x, 0, static_cast<std::int64_t>(width_) - 1);
  const std::int64_t cy =
      std::clamp<std::int64_t>(y, 0, static_cast<std::int64_t>(height_) - 1);
  return pixels_[static_cast<std::size_t>(cy) * width_ +
                 static_cast<std::size_t>(cx)];
}

image make_test_scene(std::size_t width, std::size_t height,
                      std::uint64_t variant) {
  image img(width, height);
  std::uint64_t sm = 0x5ce7e5eedULL + variant;
  const double gx = 0.3 + 0.7 * static_cast<double>(splitmix64(sm) % 997) / 997.0;
  const double gy = 0.3 + 0.7 * static_cast<double>(splitmix64(sm) % 991) / 991.0;
  const double phase = static_cast<double>(splitmix64(sm) % 359);
  const std::size_t cx = splitmix64(sm) % width;
  const std::size_t cy = splitmix64(sm) % height;
  const double radius =
      4.0 + static_cast<double>(splitmix64(sm) % (width / 2));

  rng texture(splitmix64(sm));
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      // Base gradient.
      double v = 127.0 + 60.0 * std::sin((gx * static_cast<double>(x) +
                                          gy * static_cast<double>(y) + phase) *
                                         0.05);
      // A bright disc (hard edge, the classic filter stress case).
      const double dx = static_cast<double>(x) - static_cast<double>(cx);
      const double dy = static_cast<double>(y) - static_cast<double>(cy);
      if (dx * dx + dy * dy < radius * radius) v += 70.0;
      // Fine texture.
      v += texture.uniform(-12.0, 12.0);
      img.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  }
  return img;
}

image add_gaussian_noise(const image& src, double sigma, rng& gen) {
  image out = src;
  for (std::uint8_t& p : out.pixels()) {
    const double v = static_cast<double>(p) + gen.normal(0.0, sigma);
    p = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
  }
  return out;
}

double psnr_db(const image& reference, const image& test) {
  AXC_EXPECTS(reference.width() == test.width());
  AXC_EXPECTS(reference.height() == test.height());
  double mse = 0.0;
  const auto& a = reference.pixels();
  const auto& b = test.pixels();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(a.size());
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

void write_pgm(std::ostream& os, const image& img) {
  os << "P5\n" << img.width() << " " << img.height() << "\n255\n";
  os.write(reinterpret_cast<const char*>(img.pixels().data()),
           static_cast<std::streamsize>(img.pixels().size()));
}

}  // namespace axc::imgproc
