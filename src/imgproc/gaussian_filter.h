// 3x3 Gaussian smoothing filter with a pluggable multiplier.
//
// Matches the paper's Fig. 5 setup: "a standard Gaussian filter
// implementation in which 3x3 pixels are multiplied by nine constants".
// The kernel is the integer [1 2 1; 2 4 2; 1 2 1] (coefficients sum to 16 <
// 256), each pixel-coefficient product goes through the supplied 8-bit
// multiplier LUT (coefficient = operand A, the distribution-carrying
// operand), and the accumulated sum is divided by the coefficient total.
#pragma once

#include <array>
#include <cstdint>

#include "imgproc/image.h"
#include "metrics/compiled_table.h"

namespace axc::imgproc {

struct gaussian_kernel3 {
  std::array<std::uint8_t, 9> coefficients{1, 2, 1, 2, 4, 2, 1, 2, 1};
  [[nodiscard]] unsigned total() const {
    unsigned t = 0;
    for (const std::uint8_t c : coefficients) t += c;
    return t;
  }
};

/// Filters with exact integer arithmetic (the quality reference).
image gaussian_filter_exact(const image& src,
                            const gaussian_kernel3& kernel = {});

/// Filters with every coefficient*pixel product computed by `multiplier`
/// (an unsigned 8x8 product LUT).  Accumulation stays exact, as in the
/// paper's hardware model where only multipliers are approximated.
image gaussian_filter_approx(const image& src,
                             const metrics::compiled_mult_table& multiplier,
                             const gaussian_kernel3& kernel = {});

/// Average PSNR of `filtered vs. gaussian_filter_exact` over a set of noisy
/// synthetic scenes; reproduces the paper's "mean value from 25 images".
struct filter_quality {
  double mean_psnr_db{0.0};
  double min_psnr_db{0.0};
};

filter_quality evaluate_filter_quality(const metrics::compiled_mult_table& multiplier,
                                       std::size_t image_count = 25,
                                       std::size_t image_size = 64,
                                       double noise_sigma = 12.0,
                                       std::uint64_t seed = 2026);

}  // namespace axc::imgproc
