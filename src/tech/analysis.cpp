#include "tech/analysis.h"

#include <algorithm>
#include <vector>

#include "support/assert.h"

namespace axc::tech {

using circuit::gate_fn;
using circuit::gate_node;
using circuit::netlist;

double estimate_area(const netlist& nl, const cell_library& lib) {
  const std::vector<bool> active = nl.active_mask();
  double area = 0.0;
  for (std::size_t k = 0; k < nl.num_gates(); ++k) {
    if (active[k]) area += lib.cell(nl.gate(k).fn).area_um2;
  }
  return area;
}

double estimate_area(std::span<const gate_fn> active_fns,
                     const cell_library& lib) {
  double area = 0.0;
  for (const gate_fn fn : active_fns) area += lib.cell(fn).area_um2;
  return area;
}

double critical_path_ps(const netlist& nl, const cell_library& lib) {
  const std::vector<bool> active = nl.active_mask();
  const std::size_t ni = nl.num_inputs();
  std::vector<double> arrival(nl.num_signals(), 0.0);

  for (std::size_t k = 0; k < nl.num_gates(); ++k) {
    if (!active[k]) continue;
    const gate_node& g = nl.gate(k);
    double inputs_ready = 0.0;
    if (circuit::depends_on_a(g.fn)) {
      inputs_ready = std::max(inputs_ready, arrival[g.in0]);
    }
    if (circuit::depends_on_b(g.fn)) {
      inputs_ready = std::max(inputs_ready, arrival[g.in1]);
    }
    arrival[ni + k] = inputs_ready + lib.cell(g.fn).delay_ps;
  }

  double critical = 0.0;
  for (const std::uint32_t out : nl.outputs()) {
    critical = std::max(critical, arrival[out]);
  }
  return critical;
}

power_report estimate_power(const netlist& nl, const cell_library& lib,
                            const circuit::activity_profile& activity,
                            double clock_ghz) {
  AXC_EXPECTS(activity.gate_toggle_rate.size() == nl.num_gates());
  const std::vector<bool> active = nl.active_mask();

  power_report report;
  for (std::size_t k = 0; k < nl.num_gates(); ++k) {
    if (!active[k]) continue;
    const cell_params& cell = lib.cell(nl.gate(k).fn);
    // fJ per toggle x toggles per cycle x GHz = uW.
    report.dynamic_uw +=
        activity.gate_toggle_rate[k] * cell.toggle_energy_fj * clock_ghz;
    report.leakage_uw += cell.leakage_nw * 1e-3;
  }
  return report;
}

circuit_report analyze(const netlist& nl, const cell_library& lib,
                       std::span<const std::uint64_t> workload,
                       double clock_ghz) {
  circuit_report report;
  report.area_um2 = estimate_area(nl, lib);
  report.delay_ps = critical_path_ps(nl, lib);
  const circuit::activity_profile activity =
      circuit::profile_activity(nl, workload);
  report.power = estimate_power(nl, lib, activity, clock_ghz);

  const std::vector<bool> active = nl.active_mask();
  for (std::size_t k = 0; k < nl.num_gates(); ++k) {
    const gate_fn fn = nl.gate(k).fn;
    if (active[k] && fn != gate_fn::buf_a && fn != gate_fn::buf_b &&
        fn != gate_fn::const0 && fn != gate_fn::const1) {
      ++report.active_gates;
    }
  }
  return report;
}

}  // namespace axc::tech
