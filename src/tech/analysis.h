// Area / timing / power analysis of gate-level netlists.
//
// - Area: sum of active-gate cell areas (the CGP fitness surrogate; the
//   paper picks area because it is fast to estimate and highly correlated
//   with power for this gate set).
// - Delay: static longest path over active gates.
// - Dynamic power: per-gate toggle rate (from circuit::activity) times the
//   cell's switching energy at a nominal clock.
// - PDP: total power x critical-path delay (the paper's headline metric for
//   MAC units).
#pragma once

#include <cstdint>
#include <span>

#include "circuit/activity.h"
#include "circuit/netlist.h"
#include "tech/cell_library.h"

namespace axc::tech {

struct power_report {
  double dynamic_uw{0.0};
  double leakage_uw{0.0};
  [[nodiscard]] double total_uw() const { return dynamic_uw + leakage_uw; }
};

struct circuit_report {
  double area_um2{0.0};
  double delay_ps{0.0};
  power_report power;
  std::size_t active_gates{0};
  /// Power-delay product in fJ (total power x critical-path delay).
  [[nodiscard]] double pdp_fj() const {
    return power.total_uw() * delay_ps * 1e-3;
  }
};

/// Fast area estimate (called in the CGP inner loop): sum of active-gate
/// cell areas in um^2.
double estimate_area(const circuit::netlist& nl, const cell_library& lib);

/// Area of an already-extracted active cone given its gate functions in
/// topological (emission) order — FP-identical to estimate_area() on the
/// corresponding compacted netlist, whose gates are all active and appear
/// in the same order.  Serves the genotype-native incremental search path
/// (cgp::cone_program::step_fns), which never materializes a netlist.
double estimate_area(std::span<const circuit::gate_fn> active_fns,
                     const cell_library& lib);

/// Static timing: critical-path delay in ps over active gates.
double critical_path_ps(const circuit::netlist& nl, const cell_library& lib);

/// Dynamic + leakage power given a toggle-activity profile, at `clock_ghz`.
power_report estimate_power(const circuit::netlist& nl,
                            const cell_library& lib,
                            const circuit::activity_profile& activity,
                            double clock_ghz = 1.0);

/// Full report.  `workload[t]` packs the input assignment at time t
/// (simulator.h convention); it drives the activity profile.
circuit_report analyze(const circuit::netlist& nl, const cell_library& lib,
                       std::span<const std::uint64_t> workload,
                       double clock_ghz = 1.0);

}  // namespace axc::tech
