// 45 nm-class standard-cell cost model.
//
// Substitutes for the paper's Synopsys Design Compiler + 45 nm flow.  The
// constants follow the NanGate FreePDK45 open cell library in relative
// magnitude (inverter < nand/nor < and/or < xor/xnor) — what matters for the
// reproduction is that *relative* area/delay/power orderings between circuits
// built from the same gate set are preserved, not absolute calibration.
//
// Units: area in um^2, delay in ps, switching energy in fJ per output toggle
// (internal + load at a nominal fan-out), leakage in nW at Vdd = 1 V.
#pragma once

#include <array>

#include "circuit/gate.h"

namespace axc::tech {

struct cell_params {
  double area_um2{0.0};
  double delay_ps{0.0};
  double toggle_energy_fj{0.0};
  double leakage_nw{0.0};
};

class cell_library {
 public:
  /// The default 45 nm-class library used throughout the reproduction.
  static const cell_library& nangate45_like();

  /// Unit-cost library (every real gate costs 1 area / 1 delay / 1 energy);
  /// useful for tests and for gate-count-style ablations.
  static const cell_library& unit();

  [[nodiscard]] const cell_params& cell(circuit::gate_fn fn) const {
    return cells_[static_cast<std::size_t>(fn)];
  }

  /// Supply voltage (V) — reported for documentation; energies above are
  /// already at this voltage.
  [[nodiscard]] double vdd() const { return vdd_; }

  cell_library(std::array<cell_params, circuit::gate_fn_count> cells,
               double vdd)
      : cells_(cells), vdd_(vdd) {}

 private:
  std::array<cell_params, circuit::gate_fn_count> cells_;
  double vdd_;
};

}  // namespace axc::tech
