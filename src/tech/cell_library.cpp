#include "tech/cell_library.h"

namespace axc::tech {

namespace {

using circuit::gate_fn;

constexpr std::size_t idx(gate_fn fn) { return static_cast<std::size_t>(fn); }

std::array<cell_params, circuit::gate_fn_count> nangate45_cells() {
  std::array<cell_params, circuit::gate_fn_count> cells{};
  // Wires and constants are free: synthesis ties them or absorbs buffers.
  cells[idx(gate_fn::const0)] = {0.0, 0.0, 0.0, 0.0};
  cells[idx(gate_fn::const1)] = {0.0, 0.0, 0.0, 0.0};
  cells[idx(gate_fn::buf_a)] = {0.0, 0.0, 0.0, 0.0};
  cells[idx(gate_fn::buf_b)] = {0.0, 0.0, 0.0, 0.0};
  // Single-stage static CMOS.
  cells[idx(gate_fn::not_a)] = {0.532, 11.0, 0.45, 9.0};
  cells[idx(gate_fn::not_b)] = {0.532, 11.0, 0.45, 9.0};
  cells[idx(gate_fn::nand2)] = {0.798, 14.0, 0.70, 14.0};
  cells[idx(gate_fn::nor2)] = {0.798, 16.0, 0.75, 14.0};
  // Two-stage (nand/nor + inverter).
  cells[idx(gate_fn::and2)] = {1.064, 24.0, 1.10, 19.0};
  cells[idx(gate_fn::or2)] = {1.064, 26.0, 1.15, 19.0};
  // Pass-gate / complex XOR cells.
  cells[idx(gate_fn::xor2)] = {1.596, 34.0, 1.90, 26.0};
  cells[idx(gate_fn::xnor2)] = {1.596, 34.0, 1.90, 26.0};
  // Inhibition / implication: and/or with one inverted input (complex cell).
  cells[idx(gate_fn::andn_ab)] = {1.330, 27.0, 1.30, 21.0};
  cells[idx(gate_fn::andn_ba)] = {1.330, 27.0, 1.30, 21.0};
  cells[idx(gate_fn::orn_ab)] = {1.330, 29.0, 1.35, 21.0};
  cells[idx(gate_fn::orn_ba)] = {1.330, 29.0, 1.35, 21.0};
  return cells;
}

std::array<cell_params, circuit::gate_fn_count> unit_cells() {
  std::array<cell_params, circuit::gate_fn_count> cells{};
  for (const gate_fn fn : circuit::full_function_set()) {
    const bool free_cell = fn == gate_fn::const0 || fn == gate_fn::const1 ||
                           fn == gate_fn::buf_a || fn == gate_fn::buf_b;
    cells[idx(fn)] = free_cell ? cell_params{0, 0, 0, 0}
                               : cell_params{1.0, 1.0, 1.0, 1.0};
  }
  return cells;
}

}  // namespace

const cell_library& cell_library::nangate45_like() {
  static const cell_library lib(nangate45_cells(), 1.0);
  return lib;
}

const cell_library& cell_library::unit() {
  static const cell_library lib(unit_cells(), 1.0);
  return lib;
}

}  // namespace axc::tech
