// Shard worker: one process, one sweep_spec, one durable checkpoint.
//
//   axc_worker --spec <file> --checkpoint <file> [--autosave-generations N]
//
// The whole lifecycle is resume-or-create: if the checkpoint exists and is
// (even partially) readable, the session restores every salvaged job and
// run() executes only the remainder; otherwise the sweep starts fresh.
// Progress is persisted through the session's own autosave (atomic
// save_file after every completed job, plus every N generation ticks), so
// the coordinator can SIGKILL this process at any instant and relaunch it
// without losing completed work — which is exactly what the supervision
// tests do.
//
// Deterministic fault injection is armed from the AXC_FAULT environment
// variable (see support/fault.h):
//   worker-sleep-start=MS        sleep before doing anything (stall tests)
//   worker-crash-generation@K    _Exit(42) at the K-th generation tick
// plus the session-save-* points inside save_file itself.
//
// Exit codes: 0 shard complete; 2 bad usage/spec; 3 final save failed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "core/search_session.h"
#include "core/shard_runner.h"
#include "support/fault.h"

namespace {

constexpr const char* kUsage =
    "usage: axc_worker --spec <file> --checkpoint <file> "
    "[--autosave-generations N]\n";

constexpr std::string_view kFaultSleepStart = "worker-sleep-start";
constexpr std::string_view kFaultCrashGeneration = "worker-crash-generation";

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string checkpoint_path;
  std::size_t autosave_generations = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      checkpoint_path = argv[++i];
    } else if (arg == "--autosave-generations" && i + 1 < argc) {
      autosave_generations = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (spec_path.empty() || checkpoint_path.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  axc::fault::configure_from_env();
  if (const auto ms = axc::fault::fire(kFaultSleepStart)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(*ms));
  }

  const auto spec = axc::core::sweep_spec::read_file(spec_path);
  if (!spec) {
    std::fprintf(stderr, "axc_worker: unreadable spec %s\n",
                 spec_path.c_str());
    return 2;
  }
  const axc::core::component_handle component = spec->make_component();
  if (!component) {
    std::fprintf(stderr, "axc_worker: unknown component '%s'\n",
                 spec->component.c_str());
    return 2;
  }

  axc::core::session_config options;
  options.autosave_path = checkpoint_path;
  options.autosave_generations = autosave_generations;
  if (axc::fault::active()) {
    // Crash injection rides the generation tick stream; the stride-1
    // callback is only installed when a fault plan is armed, so production
    // workers pay nothing for it.
    options.generation_stride = 1;
    options.on_progress = [](const axc::core::progress_event& event) {
      if (event.kind != axc::core::progress_kind::job_generation) return;
      if (axc::fault::fire(kFaultCrashGeneration)) {
        // A real crash: no stack unwinding, no destructors, no flush — the
        // checkpoint on disk is whatever the last autosave made durable.
        std::_Exit(42);
      }
    };
  }

  std::optional<axc::core::search_session> session;
  if (std::filesystem::exists(checkpoint_path)) {
    axc::core::resume_report report;
    session = axc::core::search_session::resume_file(
        checkpoint_path, component, options, &report);
    if (session) {
      std::fprintf(stderr,
                   "axc_worker: resumed %zu job%s from %s (v%u%s)\n",
                   report.jobs_recovered,
                   report.jobs_recovered == 1 ? "" : "s",
                   checkpoint_path.c_str(), report.version,
                   report.salvaged ? ", salvaged" : "");
    } else {
      std::fprintf(stderr,
                   "axc_worker: checkpoint %s unusable; starting fresh\n",
                   checkpoint_path.c_str());
    }
  }
  if (!session) {
    session.emplace(component, spec->seed, spec->plan, options);
  }

  session->run();
  if (!session->finished()) {
    std::fprintf(stderr, "axc_worker: session stopped before finishing\n");
    return 3;
  }
  // The last per-job autosave already persisted everything, but save once
  // more explicitly so a transient autosave failure cannot leave the final
  // state unwritten.
  bool saved = false;
  for (int attempt = 0; attempt < 3 && !saved; ++attempt) {
    saved = session->save_file(checkpoint_path);
  }
  if (!saved) {
    std::fprintf(stderr, "axc_worker: final save to %s failed\n",
                 checkpoint_path.c_str());
    return 3;
  }
  std::printf("axc_worker: %zu/%zu jobs complete, checkpoint %s\n",
              session->completed_jobs(), session->total_jobs(),
              checkpoint_path.c_str());
  return 0;
}
