// Result-store maintenance CLI.
//
//   axc_store --store D put <kind> <key> <file>    store a file's bytes
//   axc_store --store D get <kind> <key> [--out F] print (or write) bytes
//   axc_store --store D ls [--kind K]              list live entries
//   axc_store --store D scrub                      quarantine corrupt objects
//   axc_store --store D gc                         drop unreferenced objects
//
// Thin shell over core::result_store (see src/core/README.md for the
// on-disk layout).  Opening a store with a damaged or missing index is not
// an error — it is rebuilt from the object files and the rebuild/salvage is
// reported on stderr.  `scrub` never deletes: corrupt objects are renamed
// into <D>/quarantine/ and their entries dropped, so the healthy set keeps
// serving.  Exit codes: 0 ok, 1 operation failed (missing key, corrupt
// object, unwritable store), 2 usage.  `scrub` exits 0 even when it
// quarantined (the store is healthy *after* scrubbing); `ls` prints
// `<kind> <key> <hash> <size> <payload-crc>` per entry (--kind filters to
// one kind — the operator's view of a serving store's fronts or tables).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/result_store.h"

namespace {

constexpr const char* kUsage =
    "usage: axc_store --store D put <kind> <key> <file>\n"
    "       axc_store --store D get <kind> <key> [--out F]\n"
    "       axc_store --store D ls [--kind K]\n"
    "       axc_store --store D scrub\n"
    "       axc_store --store D gc\n";

int usage() {
  std::fputs(kUsage, stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_dir;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--store" && i + 1 < argc) {
      store_dir = argv[++i];
    } else {
      args.push_back(arg);
    }
  }
  if (store_dir.empty() || args.empty()) return usage();

  axc::core::store_open_report report;
  auto store = axc::core::result_store::open(store_dir, &report);
  if (!store) {
    std::fprintf(stderr, "axc_store: cannot open store at %s\n",
                 store_dir.c_str());
    return 1;
  }
  if (report.index_rebuilt) {
    std::fprintf(stderr,
                 "axc_store: index missing or damaged; rebuilt from %zu "
                 "object(s)\n",
                 report.entries);
  } else if (report.index_salvaged) {
    std::fprintf(stderr,
                 "axc_store: damaged index records dropped; %zu entries "
                 "salvaged\n",
                 report.entries);
  }

  const std::string& cmd = args[0];
  if (cmd == "put" && args.size() == 4) {
    std::ifstream is(args[3], std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "axc_store: cannot read %s\n", args[3].c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const auto hash = store->put(args[1], args[2], buffer.str());
    if (!hash) {
      std::fprintf(stderr, "axc_store: put failed\n");
      return 1;
    }
    std::printf("%016llx\n", static_cast<unsigned long long>(*hash));
    return 0;
  }
  if (cmd == "get" && (args.size() == 3 || args.size() == 5)) {
    std::string out_path;
    if (args.size() == 5) {
      if (args[3] != "--out") return usage();
      out_path = args[4];
    }
    const auto bytes = store->get(args[1], args[2]);
    if (!bytes) {
      std::fprintf(stderr, "axc_store: no healthy object for (%s, %s)\n",
                   args[1].c_str(), args[2].c_str());
      return 1;
    }
    if (out_path.empty()) {
      std::fwrite(bytes->data(), 1, bytes->size(), stdout);
      return 0;
    }
    std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
    os.write(bytes->data(), static_cast<std::streamsize>(bytes->size()));
    os.flush();
    if (!os) {
      std::fprintf(stderr, "axc_store: cannot write %s\n", out_path.c_str());
      return 1;
    }
    return 0;
  }
  if (cmd == "ls" && (args.size() == 1 || args.size() == 3)) {
    std::string kind;
    if (args.size() == 3) {
      if (args[1] != "--kind") return usage();
      kind = args[2];
    }
    for (const auto& entry : store->entries(kind)) {
      std::printf("%s %s %016llx %llu %08x\n", entry.kind.c_str(),
                  entry.key.c_str(),
                  static_cast<unsigned long long>(entry.hash),
                  static_cast<unsigned long long>(entry.size),
                  entry.payload_crc);
    }
    return 0;
  }
  if (cmd == "scrub" && args.size() == 1) {
    const auto scrub = store->scrub();
    std::printf(
        "scrub: %zu object(s) checked, %zu quarantined, %zu index "
        "entr%s dropped\n",
        scrub.objects_checked, scrub.quarantined, scrub.entries_dropped,
        scrub.entries_dropped == 1 ? "y" : "ies");
    return 0;
  }
  if (cmd == "gc" && args.size() == 1) {
    const auto gc = store->gc();
    std::printf("gc: %zu object(s) removed, %llu bytes reclaimed\n",
                gc.objects_removed,
                static_cast<unsigned long long>(gc.bytes_reclaimed));
    return 0;
  }
  return usage();
}
