// Sharded sweep coordinator CLI.
//
//   axc_sweep --spec <file> --worker <axc_worker> [--work-dir D]
//             [--shards N] [--max-attempts N] [--attempt-timeout-ms N]
//             [--stall-timeout-ms N] [--autosave-generations N]
//             [--store D] [--nodes <file>] [--speculate-after-ms N]
//
// With --nodes, shards are leased to the fleet described by an axc-nodes
// v1 file (core/node_pool.h): workers launch through each node's command
// templates (ssh or anything shaped like it), dead nodes are quarantined
// and their shards reassigned, remote checkpoints are fetched and
// CRC-verified before merging, and --speculate-after-ms duplicates
// straggler shards onto idle nodes (first valid checkpoint wins).
//
// Splits the sweep described by <file> (sweep_spec::write format) across
// supervised worker processes, merges the surviving shard checkpoints and
// prints the Pareto front.  Re-running after any interruption — a worker
// crash, or the coordinator itself dying (its supervision journal lives in
// the work directory) — resumes from the shard checkpoints + journal and
// converges on the uninterrupted result.  With --store, the merge is
// published into the core::result_store at D (shard checkpoints under kind
// "session", the complete front under kind "front"); inspect it with
// tools/axc_store.  The coordinator arms AXC_FAULT crash points
// (coord-crash-after-spawn, coord-crash-mid-merge,
// store-crash-mid-index-append) for the recovery test suite.
//
//   axc_sweep --demo --worker <axc_worker> [--work-dir D]
//
// Self-contained crash-recovery round trip (the CI smoke): builds a small
// built-in multiplier sweep, runs it across 2 shards with shard 0's first
// attempt armed to crash mid-run (AXC_FAULT=worker-crash-generation@40),
// then verifies that the merged result is bit-identical to an
// uninterrupted in-process run of the same spec.  Exits 0 only when the
// crashed-and-retried sweep reproduces the reference exactly.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "core/shard_runner.h"
#include "dist/pmf.h"
#include "mult/multipliers.h"
#include "support/fault.h"

namespace {

constexpr const char* kUsage =
    "usage: axc_sweep --spec <file> --worker <axc_worker> [--work-dir D]\n"
    "                 [--shards N] [--max-attempts N]\n"
    "                 [--attempt-timeout-ms N] [--stall-timeout-ms N]\n"
    "                 [--autosave-generations N] [--store D]\n"
    "                 [--nodes <file>] [--speculate-after-ms N]\n"
    "       axc_sweep --demo --worker <axc_worker> [--work-dir D]\n"
    "       axc_sweep --emit-demo-spec <file>\n";

// SIGTERM/SIGINT request a graceful drain instead of dying
// mid-supervision: the runner kills its workers (checkpoints survive),
// merges what completed, and the process exits 130 — re-running the same
// command resumes from the shard checkpoints + journal.
volatile std::sig_atomic_t g_drain = 0;

void on_signal(int) { g_drain = 1; }

const char* event_name(axc::core::shard_event_kind kind) {
  using axc::core::shard_event_kind;
  switch (kind) {
    case shard_event_kind::spawned: return "spawned";
    case shard_event_kind::heartbeat: return "heartbeat";
    case shard_event_kind::timed_out: return "timed-out";
    case shard_event_kind::stalled: return "stalled";
    case shard_event_kind::exited: return "exited";
    case shard_event_kind::retrying: return "retrying";
    case shard_event_kind::completed: return "completed";
    case shard_event_kind::failed: return "failed";
    case shard_event_kind::drained: return "drained";
    case shard_event_kind::speculated: return "speculated";
    case shard_event_kind::fetch_torn: return "fetch-torn";
  }
  return "?";
}

void log_event(const axc::core::shard_event& event) {
  std::fprintf(
      stderr,
      "axc_sweep: shard %zu attempt %zu: %s (%zu/%zu jobs, exit %d%s%s)\n",
      event.shard, event.attempt, event_name(event.kind), event.jobs_done,
      event.jobs_total, event.exit_code,
      event.node.empty() ? "" : ", node ",
      event.node.empty() ? "" : event.node.c_str());
}

void print_result(const axc::core::sweep_result& result) {
  for (const auto& shard : result.shards) {
    std::printf(
        "shard %zu: %s after %zu attempt%s, %zu/%zu jobs recovered"
        "%s%s%s%s%s\n",
        shard.shard, shard.completed ? "completed" : "FAILED",
        shard.attempts, shard.attempts == 1 ? "" : "s",
        shard.jobs_recovered, shard.jobs_total,
        shard.timed_out ? ", hit a deadline" : "",
        shard.jobs_dropped > 0 ? ", salvaged a damaged checkpoint" : "",
        shard.node.empty() ? "" : ", won by node ",
        shard.node.empty() ? "" : shard.node.c_str(),
        shard.speculative_win ? " (speculative duplicate)" : "");
  }
  for (const auto& node : result.nodes) {
    const char* health =
        node.health == axc::core::node_health::healthy      ? "healthy"
        : node.health == axc::core::node_health::backing_off ? "backing-off"
                                                             : "quarantined";
    std::printf(
        "node %s: %s, %zu launch%s, %zu failure%s, %zu quarantine%s%s\n",
        node.name.c_str(), health, node.launches,
        node.launches == 1 ? "" : "es", node.failures,
        node.failures == 1 ? "" : "s", node.quarantines,
        node.quarantines == 1 ? "" : "s",
        node.probation ? ", on probation" : "");
  }
  std::printf("sweep %s: %zu designs, front of %zu points\n",
              result.complete ? "complete" : "INCOMPLETE",
              result.designs.size(), result.front.size());
  for (const auto& point : result.front) {
    std::printf("  wmed %.6g  area %.6g um^2  (job %zu)\n", point.x,
                point.y, point.index);
  }
}

axc::core::sweep_spec demo_spec() {
  axc::core::sweep_spec spec;
  spec.component = "mult";
  spec.options.width = 4;
  spec.options.distribution = axc::dist::pmf::half_normal(16, 4.0);
  spec.options.iterations = 200;
  spec.options.extra_columns = 16;
  spec.options.rng_seed = 11;
  spec.plan.targets = {0.002, 0.02};
  spec.plan.runs_per_target = 2;
  spec.options.runs_per_target = 2;
  spec.seed = axc::mult::unsigned_multiplier(4);
  return spec;
}

int run_demo(const std::string& worker, std::string work_dir) {
  if (work_dir.empty()) {
    work_dir = (std::filesystem::temp_directory_path() /
                ("axc-sweep-demo-" + std::to_string(::getpid())))
                   .string();
  }
  // A stale checkpoint would let the sweep trivially resume to completion;
  // the demo must exercise the crash, so start clean.
  std::error_code ec;
  std::filesystem::remove_all(work_dir, ec);

  const axc::core::sweep_spec spec = demo_spec();
  axc::core::shard_runner_config config;
  config.shards = 2;
  config.max_attempts = 3;
  config.work_dir = work_dir;
  config.worker_binary = worker;
  config.on_event = log_event;
  // Shard 0's first life dies mid-search with only its autosaves on disk;
  // the relaunch must resume them and finish the shard.
  config.shard_env = {{"AXC_FAULT=worker-crash-generation@40"}};

  std::printf("axc_sweep --demo: sharded run with an injected crash\n");
  const axc::core::sweep_result sharded =
      axc::core::run_sweep(spec, config);
  print_result(sharded);

  const auto& shard0 =
      sharded.shards.empty() ? axc::core::shard_outcome{} : sharded.shards[0];
  if (shard0.attempts < 2) {
    std::printf("DEMO FAIL: the injected crash did not force a retry\n");
    return 1;
  }

  std::printf("axc_sweep --demo: uninterrupted in-process reference\n");
  const axc::core::sweep_result reference =
      axc::core::run_sweep_inprocess(spec);

  bool same = sharded.complete && reference.complete &&
              sharded.designs.size() == reference.designs.size() &&
              sharded.front.size() == reference.front.size();
  if (same) {
    for (std::size_t i = 0; i < sharded.designs.size(); ++i) {
      const auto& a = sharded.designs[i];
      const auto& b = reference.designs[i];
      same = same && a.netlist == b.netlist && a.wmed == b.wmed &&
             a.area_um2 == b.area_um2 && a.target == b.target &&
             a.run_index == b.run_index && a.evaluations == b.evaluations;
    }
    for (std::size_t i = 0; i < sharded.front.size(); ++i) {
      same = same && sharded.front[i] == reference.front[i];
    }
  }
  std::filesystem::remove_all(work_dir, ec);
  if (!same) {
    std::printf(
        "DEMO FAIL: crashed-and-retried sweep diverged from the "
        "uninterrupted reference\n");
    return 1;
  }
  std::printf(
      "DEMO PASS: crash + resume reproduced the uninterrupted front "
      "bit-exactly\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // The recovery suite arms coordinator crash points through the
  // environment, exactly as workers do.
  axc::fault::configure_from_env();
  std::string spec_path;
  std::string worker;
  std::string work_dir;
  std::string emit_spec_path;
  bool demo = false;
  axc::core::shard_runner_config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--emit-demo-spec" && i + 1 < argc) {
      emit_spec_path = argv[++i];
    } else if (arg == "--worker" && i + 1 < argc) {
      worker = argv[++i];
    } else if (arg == "--work-dir" && i + 1 < argc) {
      work_dir = argv[++i];
    } else if (arg == "--shards" && i + 1 < argc) {
      config.shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-attempts" && i + 1 < argc) {
      config.max_attempts = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--attempt-timeout-ms" && i + 1 < argc) {
      config.attempt_timeout =
          std::chrono::milliseconds(std::strtoll(argv[++i], nullptr, 10));
    } else if (arg == "--stall-timeout-ms" && i + 1 < argc) {
      config.stall_timeout =
          std::chrono::milliseconds(std::strtoll(argv[++i], nullptr, 10));
    } else if (arg == "--autosave-generations" && i + 1 < argc) {
      config.worker_autosave_generations =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--store" && i + 1 < argc) {
      config.store_dir = argv[++i];
    } else if (arg == "--nodes" && i + 1 < argc) {
      // Lease shards to the fleet described by an axc-nodes v1 file (see
      // core/node_pool.h) instead of the implicit local node.
      const char* path = argv[++i];
      auto nodes = axc::core::parse_nodes_file(path);
      if (!nodes) {
        std::fprintf(stderr, "axc_sweep: cannot parse nodes file %s\n", path);
        return 2;
      }
      config.nodes = *std::move(nodes);
    } else if (arg == "--speculate-after-ms" && i + 1 < argc) {
      config.speculate_after =
          std::chrono::milliseconds(std::strtoll(argv[++i], nullptr, 10));
    } else if (arg == "--demo") {
      demo = true;
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (!emit_spec_path.empty()) {
    // Writes the --demo sweep's spec for out-of-process consumers (the CI
    // serve smoke feeds it to axc_serve/axc_client).
    if (!demo_spec().write_file(emit_spec_path)) {
      std::fprintf(stderr, "axc_sweep: cannot write %s\n",
                   emit_spec_path.c_str());
      return 1;
    }
    return 0;
  }
  if (worker.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  config.should_stop = [] { return g_drain != 0; };
  if (demo) return run_demo(worker, work_dir);
  if (spec_path.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  const auto spec = axc::core::sweep_spec::read_file(spec_path);
  if (!spec) return 2;
  config.worker_binary = worker;
  config.work_dir = work_dir.empty() ? spec_path + ".work" : work_dir;
  config.on_event = log_event;
  const axc::core::sweep_result result = axc::core::run_sweep(*spec, config);
  print_result(result);
  if (result.drained) {
    std::fprintf(stderr,
                 "axc_sweep: drained on signal; checkpoints and journal "
                 "kept — re-run the same command to resume\n");
    return 130;
  }
  return result.complete ? 0 : 1;
}
