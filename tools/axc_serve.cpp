// Long-lived result-serving daemon (the front door of the sweep runtime).
//
//   axc_serve --store D --socket PATH --work-dir D [--worker BIN]
//             [--queue-limit N] [--shards N] [--max-attempts N]
//             [--receive-timeout-ms N] [--nodes FILE]
//             [--speculate-after-ms N]
//
// --nodes points the miss-path job queue at a multi-node fleet (axc-nodes
// v1 file, core/node_pool.h): sweep workers launch through each node's
// command templates with quarantine/reassignment handled by the embedded
// coordinator; --speculate-after-ms duplicates straggler shards.
//
// Answers "sweep spec (+ optional error budget) -> Pareto front" requests
// over the Unix-domain socket at PATH, speaking the CRC-framed protocol in
// support/net.h + core/result_server.h (client: tools/axc_client).  Hits
// are result_store lookups served in microseconds; misses enqueue a
// sharded sweep (workers spawned from BIN) on a bounded background queue
// with in-flight coalescing by store key.  Without --worker every miss is
// rejected (a read-only serving replica).
//
// SIGTERM/SIGINT drain gracefully: stop accepting, kill in-flight sweep
// workers (their checkpoints survive), answer blocked waiters with
// `draining`, and exit 0 — the CRC'd server journal in the work directory
// makes the next life re-adopt any unfinished job.  The AXC_FAULT crash
// points (server-crash-mid-enqueue, server-crash-before-reply, plus the
// coordinator/store points inside the embedded run_sweep) are armed from
// the environment for the recovery test suite.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>

#include "core/result_server.h"
#include "support/fault.h"

namespace {

constexpr const char* kUsage =
    "usage: axc_serve --store D --socket PATH --work-dir D [--worker BIN]\n"
    "                 [--queue-limit N] [--shards N] [--max-attempts N]\n"
    "                 [--receive-timeout-ms N] [--nodes FILE]\n"
    "                 [--speculate-after-ms N]\n";

// The drain signal only pokes the server's self-pipe — the one
// async-signal-safe way to wake a poll()-based accept loop.
volatile sig_atomic_t g_stop_fd = -1;

void on_signal(int) {
  if (g_stop_fd >= 0) {
    const char byte = 'x';
    (void)!::write(static_cast<int>(g_stop_fd), &byte, 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  axc::fault::configure_from_env();
  axc::core::server_config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--store" && i + 1 < argc) {
      config.store_dir = argv[++i];
    } else if (arg == "--socket" && i + 1 < argc) {
      config.socket_path = argv[++i];
    } else if (arg == "--work-dir" && i + 1 < argc) {
      config.work_dir = argv[++i];
    } else if (arg == "--worker" && i + 1 < argc) {
      config.worker_binary = argv[++i];
    } else if (arg == "--queue-limit" && i + 1 < argc) {
      config.queue_limit = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--shards" && i + 1 < argc) {
      config.shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-attempts" && i + 1 < argc) {
      config.max_attempts = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--receive-timeout-ms" && i + 1 < argc) {
      config.receive_timeout_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--nodes" && i + 1 < argc) {
      const char* path = argv[++i];
      auto nodes = axc::core::parse_nodes_file(path);
      if (!nodes) {
        std::fprintf(stderr, "axc_serve: cannot parse nodes file %s\n", path);
        return 2;
      }
      config.nodes = *std::move(nodes);
    } else if (arg == "--speculate-after-ms" && i + 1 < argc) {
      config.speculate_after =
          std::chrono::milliseconds(std::strtoll(argv[++i], nullptr, 10));
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (config.store_dir.empty() || config.socket_path.empty() ||
      config.work_dir.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  axc::core::result_server server(config);
  if (!server.start()) return 1;
  g_stop_fd = server.stop_write_fd();
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::fprintf(stderr, "axc_serve: serving %s at %s\n",
               config.store_dir.c_str(), config.socket_path.c_str());
  server.serve();

  const axc::core::serve_stats stats = server.stats();
  std::fprintf(stderr,
               "axc_serve: drained (hits %llu, misses %llu, coalesced %llu, "
               "rejected %llu, malformed %llu, sweeps %llu ok / %llu "
               "failed, tables %llu, adopted %llu)\n",
               static_cast<unsigned long long>(stats.hits),
               static_cast<unsigned long long>(stats.misses_enqueued),
               static_cast<unsigned long long>(stats.coalesced),
               static_cast<unsigned long long>(stats.rejected),
               static_cast<unsigned long long>(stats.malformed),
               static_cast<unsigned long long>(stats.sweeps_completed),
               static_cast<unsigned long long>(stats.sweeps_failed),
               static_cast<unsigned long long>(stats.tables_built),
               static_cast<unsigned long long>(stats.jobs_adopted));
  return 0;
}
