// Client for the axc_serve daemon.
//
//   axc_client --socket PATH <get|status|wait|table> --spec FILE
//              [--budget B] [--timeout-ms N] [--out F]
//              [--retry N] [--retry-delay ms]
//   axc_client key --spec FILE
//
// --retry N retries a refused/missing socket up to N times with bounded
// exponential backoff starting at --retry-delay ms (default 100, doubling,
// capped at 5 s per wait) — so scripted clients ride out a server restart
// window instead of hard-failing on ECONNREFUSED.  Only the *connect* is
// retried; once a connection is up, a failed exchange is a real error.
//
// Sends one request (the sweep_spec in FILE, "axc-sweep-spec v1" text)
// over the Unix-domain socket and reports the reply: the status line goes
// to stderr, a payload (the front or table bytes, exactly as stored) to
// stdout or --out.  `key` needs no server — it prints the spec's front
// store key (result_store::format_key of store_key()), so shell scripts
// can cross-check a served front against `axc_store get front <key>`.
//
// Exit codes map the reply status so scripts can branch without parsing:
//   0  hit (payload delivered) — also `status` reporting hit
//   3  miss-enqueued / queued / running (ask again, or use `wait`)
//   4  miss-rejected / failed / draining / timeout
//   1  transport or protocol error
//   2  usage
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "core/result_server.h"
#include "core/result_store.h"
#include "core/shard_runner.h"
#include "support/net.h"

namespace {

constexpr const char* kUsage =
    "usage: axc_client --socket PATH <get|status|wait|table> --spec FILE\n"
    "                  [--budget B] [--timeout-ms N] [--out F]\n"
    "                  [--retry N] [--retry-delay ms]\n"
    "       axc_client key --spec FILE\n";

int usage() {
  std::fputs(kUsage, stderr);
  return 2;
}

int status_exit_code(const std::string& status) {
  if (status == "hit") return 0;
  if (status == "miss-enqueued" || status == "queued" ||
      status == "running") {
    return 3;
  }
  if (status == "miss-rejected" || status == "failed" ||
      status == "draining" || status == "timeout") {
    return 4;
  }
  return 1;  // malformed / unknown / error
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, verb, spec_path, out_path;
  std::size_t retries = 0;
  long long retry_delay_ms = 100;
  axc::core::serve_request request;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--budget" && i + 1 < argc) {
      request.budget = std::strtod(argv[++i], nullptr);
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      request.timeout_ms = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--retry" && i + 1 < argc) {
      retries = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--retry-delay" && i + 1 < argc) {
      retry_delay_ms = std::strtoll(argv[++i], nullptr, 10);
    } else if (!arg.empty() && arg[0] != '-' && verb.empty()) {
      verb = arg;
    } else {
      return usage();
    }
  }
  if (verb.empty() || spec_path.empty()) return usage();

  auto spec = axc::core::sweep_spec::read_file(spec_path);
  if (!spec) return 1;

  if (verb == "key") {
    std::printf(
        "%s\n",
        axc::core::result_store::format_key(spec->store_key()).c_str());
    return 0;
  }
  if (verb != "get" && verb != "status" && verb != "wait" &&
      verb != "table") {
    return usage();
  }
  if (socket_path.empty()) return usage();
  request.verb = verb;
  request.spec = *std::move(spec);

  auto stream = axc::support::net::unix_stream::connect(socket_path);
  // Bounded exponential backoff over the connect only: a restarting server
  // refuses (or hasn't re-bound) its socket for a window, and a scripted
  // client should ride that out rather than fail the pipeline.
  long long delay_ms = std::max(1ll, retry_delay_ms);
  for (std::size_t attempt = 0; !stream && attempt < retries; ++attempt) {
    std::fprintf(stderr,
                 "axc_client: cannot connect to %s; retrying in %lld ms "
                 "(%zu/%zu)\n",
                 socket_path.c_str(), delay_ms, attempt + 1, retries);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    delay_ms = std::min(delay_ms * 2, 5000ll);
    stream = axc::support::net::unix_stream::connect(socket_path);
  }
  if (!stream) {
    std::fprintf(stderr, "axc_client: cannot connect to %s\n",
                 socket_path.c_str());
    return 1;
  }
  if (!stream->send(axc::core::encode_request(request))) {
    std::fprintf(stderr, "axc_client: send failed\n");
    return 1;
  }
  axc::support::net::frame_error error =
      axc::support::net::frame_error::none;
  // Fronts are small but tables for wide components are not; accept up to
  // 64 MiB before calling a reply hostile.
  const auto frame = stream->receive(64u << 20, &error);
  if (!frame) {
    std::fprintf(stderr, "axc_client: no reply (frame error %d)\n",
                 static_cast<int>(error));
    return 1;
  }
  const auto reply = axc::core::parse_reply(*frame);
  if (!reply) {
    std::fprintf(stderr, "axc_client: unparseable reply\n");
    return 1;
  }
  std::fprintf(stderr, "axc_client: status %s%s%s\n", reply->status.c_str(),
               reply->key.empty() ? "" : " key ", reply->key.c_str());
  if (reply->payload) {
    if (out_path.empty()) {
      std::fwrite(reply->payload->data(), 1, reply->payload->size(), stdout);
    } else {
      std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
      os.write(reply->payload->data(),
               static_cast<std::streamsize>(reply->payload->size()));
      os.flush();
      if (!os) {
        std::fprintf(stderr, "axc_client: cannot write %s\n",
                     out_path.c_str());
        return 1;
      }
    }
  }
  return status_exit_code(reply->status);
}
